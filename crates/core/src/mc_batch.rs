//! Batched Monte-Carlo execution: lane groups in lockstep over a shared
//! chase state.
//!
//! The chase is embarrassingly parallel across runs, and with per-run
//! derived RNG streams ([`crate::mc::derive_seed`]) the runs of a batch
//! can be driven *together* without changing any run's result: as long as
//! lane `i`'s RNG consumes exactly the draws the scalar
//! [`crate::mc::single_run`] would feed it, the lane's world is
//! bit-identical, regardless of how lanes are grouped or interleaved.
//!
//! The executor keeps the batch as **lane groups**: a group is a set of
//! runs whose chase states are still identical — one shared `Instance`,
//! one maintained index, one policy state, one step counter, plus one RNG
//! per lane. Every run of a batch starts in a single root group (the
//! deterministic prefix — rules firing before the first Ψ-atom — is
//! therefore executed exactly once and shared by all lanes), and a group
//! only *splits* when an existential firing draws diverging outcomes:
//! lanes are partitioned by their joint outcome vector (first-occurrence
//! order), the first partition continues on the group's state in place,
//! and each later partition clones the state once. Discrete programs with
//! few distinct outcomes thus share almost all chase work across a batch,
//! while continuous programs degenerate gracefully to one lane per group
//! after the first continuous sample — still amortizing the shared
//! prefix, the applicability probes before the fork, and the batched
//! kernel calls.
//!
//! Sampling inside a group is **spec-major** via
//! [`gdatalog_dist::ParamDist::sample_batch`]: parameters are evaluated
//! once per spec (they are a function of the valuation, shared by the
//! whole group) and each lane's RNG is touched once per spec in spec
//! order — exactly the scalar draw order of
//! [`crate::sequential::fire`].
//!
//! Lane-partition equality uses `Value`'s total equality (`-0.0` is
//! normalized at construction and NaN rejected), so two lanes merge only
//! when their sampled values are the same points of the value domain —
//! their futures are then provably identical.

use std::ops::Range;
use std::rc::Rc;

use gdatalog_data::{Instance, RelId, Tuple, Value};
use gdatalog_datalog::InstanceIndex;
use gdatalog_dist::DistError;
use gdatalog_lang::{CompiledProgram, RuleKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::applicability::{eval_term, eval_terms, AppPair, PreparedProgram};
use crate::mc::{derive_seed, ChaseVariant, McConfig};
use crate::policy::{ChasePolicy, PolicyKind};

/// Per-lane result of a batched execution. Terminated lanes of one group
/// share their projected world through an [`Rc`] (the batch is always
/// driven and consumed on one worker thread), so a group of N identical
/// runs materializes its world once.
#[derive(Debug, Clone)]
pub(crate) enum LaneObs {
    /// The lane terminated with this world (post `keep_aux` projection).
    World(Rc<Instance>),
    /// The lane exhausted the step budget (the error event `err`).
    Budget,
    /// A runtime distribution failure. The whole group of the failing
    /// lane is marked failed: parameters are shared group-wide, so for
    /// the standard family the error is lane-independent.
    Failed(DistError),
}

/// Whether `variant` can be driven by the batched executor. The parallel
/// chase has its own loop, and `Random` policies consume a *per-run
/// derived* PRNG stream, so their selection state cannot be shared by a
/// lane group — both fall back to the scalar path.
pub(crate) fn batched_variant(variant: ChaseVariant) -> bool {
    match variant {
        ChaseVariant::Sequential(PolicyKind::Random { .. }) | ChaseVariant::Parallel => false,
        ChaseVariant::Sequential(_) | ChaseVariant::Saturating => true,
    }
}

/// A set of runs whose chase states are still identical.
struct Group {
    /// Batch-local lane indices (positions into the result vector).
    lanes: Vec<usize>,
    /// One RNG per lane, parallel to `lanes`.
    rngs: Vec<StdRng>,
    instance: Instance,
    index: InstanceIndex,
    policy: ChasePolicy,
    steps: usize,
}

impl Group {
    /// Applies one fired fact to the group state — the exact insert /
    /// absorb / step accounting of the scalar chase loops
    /// ([`crate::sequential::run_sequential_prepared`] and
    /// [`crate::saturate::run_saturating_prepared`]).
    fn apply_fact(
        &mut self,
        prepared: &PreparedProgram,
        saturating: bool,
        rel: RelId,
        tuple: Tuple,
    ) {
        let fresh = self.instance.insert(rel, tuple.clone());
        self.steps += 1;
        if fresh {
            self.index.absorb(rel, &tuple);
            if saturating {
                // Continue the deterministic fixpoint from the new fact.
                let stats = prepared.det().saturate_in_place(
                    prepared.specs(),
                    &mut self.instance,
                    &mut self.index,
                    Some(gdatalog_datalog::Delta::single(rel, tuple)),
                );
                self.steps += stats.derived_facts;
            }
        }
    }
}

/// Executes the runs `range` as one batch and returns one observation per
/// lane, in run-index order. Each lane's outcome is bit-identical to the
/// scalar [`crate::mc::single_run`] on the same run index (same derived
/// seed, same draw order, same step accounting); only the *work* is
/// shared across lanes, never the randomness.
///
/// The caller must have checked [`batched_variant`]; deadline checks stay
/// outside (cooperative at batch boundaries).
pub(crate) fn run_batch(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    input: &Instance,
    config: &McConfig,
    existential: &[usize],
    range: Range<usize>,
) -> Vec<LaneObs> {
    let n = range.len();
    if n == 0 {
        return Vec::new();
    }
    let saturating = matches!(config.variant, ChaseVariant::Saturating);
    let kind = match config.variant {
        // The saturating chase always fires app[0]; the policy is unused.
        ChaseVariant::Saturating => PolicyKind::Canonical,
        ChaseVariant::Sequential(kind) => kind,
        ChaseVariant::Parallel => unreachable!("parallel runs are not batchable"),
    };

    let rngs: Vec<StdRng> = range
        .clone()
        .map(|run_ix| StdRng::seed_from_u64(derive_seed(config.seed, run_ix as u64)))
        .collect();

    // Root group: the deterministic prefix below is shared by every lane.
    let mut instance = input.clone();
    let mut index = prepared.new_index(&instance);
    let mut steps = 0usize;
    if saturating {
        let stats =
            prepared
                .det()
                .saturate_in_place(prepared.specs(), &mut instance, &mut index, None);
        steps += stats.derived_facts;
    }
    let root = Group {
        lanes: (0..n).collect(),
        rngs,
        instance,
        index,
        policy: ChasePolicy::new(kind, existential),
        steps,
    };

    let mut results: Vec<Option<LaneObs>> = (0..n).map(|_| None).collect();
    let mut worklist = vec![root];
    while let Some(mut group) = worklist.pop() {
        loop {
            let app = if saturating {
                prepared.applicable_existential_pairs(program, &group.instance, &group.index)
            } else {
                prepared.applicable_pairs(program, &group.instance, &group.index)
            };
            if app.is_empty() {
                // Terminated: project once, share across the group.
                let world = Rc::new(if config.keep_aux {
                    group.instance
                } else {
                    program.project_output(&group.instance)
                });
                for &lane in &group.lanes {
                    results[lane] = Some(LaneObs::World(Rc::clone(&world)));
                }
                break;
            }
            if group.steps >= config.max_steps {
                for &lane in &group.lanes {
                    results[lane] = Some(LaneObs::Budget);
                }
                break;
            }
            let chosen = if saturating {
                0
            } else {
                group.policy.select(&app)
            };
            let AppPair { rule, valuation } = app[chosen].clone();
            match &program.rules[rule].kind {
                RuleKind::Deterministic { head } => {
                    // No randomness: the whole group fires identically.
                    let tuple: Tuple = head.args.iter().map(|t| eval_term(t, &valuation)).collect();
                    group.apply_fact(prepared, saturating, head.rel, tuple);
                }
                RuleKind::Existential(e) => {
                    // Spec-major batched sampling over the group's lanes.
                    let key = eval_terms(&e.key_terms, &valuation);
                    let mut per_spec: Vec<Vec<Value>> = Vec::with_capacity(e.samples.len());
                    let mut failure: Option<DistError> = None;
                    for spec in &e.samples {
                        let params = eval_terms(&spec.param_terms, &valuation);
                        let mut outcomes = Vec::new();
                        if let Err(err) =
                            spec.dist
                                .sample_batch(&params, &mut group.rngs, &mut outcomes)
                        {
                            failure = Some(err);
                            break;
                        }
                        // The scalar fire() computes every outcome's
                        // log-density (the run's log-weight); match its
                        // work and its error surface, discarding the
                        // values — batched emission recomputes the
                        // conditioned weight from the final world.
                        let mut densities = Vec::new();
                        if let Err(err) =
                            spec.dist
                                .log_density_batch(&params, &outcomes, &mut densities)
                        {
                            failure = Some(err);
                            break;
                        }
                        per_spec.push(outcomes);
                    }
                    if let Some(err) = failure {
                        // Parameters are shared group-wide, so the error
                        // is lane-independent for the standard family;
                        // a custom member failing on one lane's outcome
                        // fails its whole group (the batch boundary is
                        // the error granularity).
                        for &lane in &group.lanes {
                            results[lane] = Some(LaneObs::Failed(err.clone()));
                        }
                        break;
                    }

                    // Partition lanes by joint outcome, first-occurrence
                    // order. Most steps have one partition (discrete
                    // draws agree) or all-singletons (continuous draws).
                    let mut parts: Vec<(Vec<usize>, Vec<Value>)> = Vec::new();
                    for li in 0..group.lanes.len() {
                        let joint: Vec<Value> = per_spec
                            .iter()
                            .map(|outcomes| outcomes[li].clone())
                            .collect();
                        match parts.iter_mut().find(|(_, j)| *j == joint) {
                            Some((members, _)) => members.push(li),
                            None => parts.push((vec![li], joint)),
                        }
                    }

                    // Later partitions clone the pre-fire state once each;
                    // partition 0 keeps the group's state in place.
                    for (members, joint) in parts.drain(1..) {
                        let mut spawned = Group {
                            lanes: members.iter().map(|&li| group.lanes[li]).collect(),
                            rngs: members.iter().map(|&li| group.rngs[li].clone()).collect(),
                            instance: group.instance.clone(),
                            index: group.index.clone(),
                            policy: group.policy.clone(),
                            steps: group.steps,
                        };
                        let mut values = key.clone();
                        values.extend(joint);
                        spawned.apply_fact(prepared, saturating, e.aux_rel, Tuple::from(values));
                        worklist.push(spawned);
                    }
                    let (members, joint) = parts.pop().expect("a non-empty group partitions");
                    if members.len() < group.lanes.len() {
                        group.lanes = members.iter().map(|&li| group.lanes[li]).collect();
                        group.rngs = members.iter().map(|&li| group.rngs[li].clone()).collect();
                    }
                    let mut values = key;
                    values.extend(joint);
                    group.apply_fact(prepared, saturating, e.aux_rel, Tuple::from(values));
                }
            }
        }
    }

    results
        .into_iter()
        .map(|obs| obs.expect("every lane is assigned exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    fn scalar_obs(
        program: &CompiledProgram,
        config: &McConfig,
        existential: &[usize],
        run_ix: usize,
    ) -> Option<Instance> {
        let prepared = PreparedProgram::new(program);
        crate::mc::single_run(
            program,
            &prepared,
            &program.initial_instance,
            config,
            existential,
            run_ix,
        )
        .unwrap()
    }

    fn assert_batch_matches_scalar(src: &str, config: &McConfig, runs: usize) {
        let program = compile(src);
        let existential: Vec<usize> = program
            .rules
            .iter()
            .filter(|r| r.is_existential())
            .map(|r| r.id)
            .collect();
        let prepared = PreparedProgram::new(&program);
        let batched = run_batch(
            &program,
            &prepared,
            &program.initial_instance,
            config,
            &existential,
            0..runs,
        );
        assert_eq!(batched.len(), runs);
        for (run_ix, obs) in batched.iter().enumerate() {
            let scalar = scalar_obs(&program, config, &existential, run_ix);
            match (obs, scalar) {
                (LaneObs::World(world), Some(expect)) => {
                    assert_eq!(**world, expect, "run {run_ix} world diverged");
                }
                (LaneObs::Budget, None) => {}
                (got, expect) => panic!("run {run_ix}: {got:?} vs scalar {expect:?}"),
            }
        }
    }

    #[test]
    fn discrete_batch_is_bit_identical_to_scalar() {
        let config = McConfig {
            seed: 42,
            max_steps: 1_000,
            ..McConfig::default()
        };
        assert_batch_matches_scalar(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            City(metropolis, 0.2).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Trig(X, Flip<0.6>) :- Earthquake(X, 1).
            Alarm(X) :- Trig(X, 1).
        "#,
            &config,
            33,
        );
    }

    #[test]
    fn continuous_batch_is_bit_identical_to_scalar() {
        let config = McConfig {
            seed: 7,
            max_steps: 1_000,
            ..McConfig::default()
        };
        assert_batch_matches_scalar(
            r#"
            M(Normal<0.0, 1.0>) :- true.
            Y(Normal<X, 0.5>) :- M(X).
            Out(X) :- Y(X).
        "#,
            &config,
            17,
        );
    }

    #[test]
    fn saturating_batch_is_bit_identical_to_scalar() {
        let config = McConfig {
            seed: 11,
            max_steps: 10_000,
            variant: ChaseVariant::Saturating,
            ..McConfig::default()
        };
        assert_batch_matches_scalar(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Trig(X, Flip<0.6>) :- Earthquake(X, 1).
            Alarm(X) :- Trig(X, 1).
        "#,
            &config,
            33,
        );
    }

    #[test]
    fn budget_exhaustion_matches_scalar_per_lane() {
        let config = McConfig {
            seed: 3,
            max_steps: 30,
            ..McConfig::default()
        };
        assert_batch_matches_scalar(
            r#"
            C(0.0).
            C(Normal<V, 1.0>) :- C(V).
        "#,
            &config,
            9,
        );
    }

    #[test]
    fn keep_aux_batches_identically() {
        let config = McConfig {
            seed: 5,
            max_steps: 1_000,
            keep_aux: true,
            ..McConfig::default()
        };
        assert_batch_matches_scalar("R(Flip<0.5>) :- true. S(X) :- R(X).", &config, 16);
    }

    #[test]
    fn nontrivial_policies_batch_identically() {
        for kind in [
            PolicyKind::Reverse,
            PolicyKind::RoundRobin,
            PolicyKind::DeterministicFirst,
        ] {
            let config = McConfig {
                seed: 13,
                max_steps: 1_000,
                variant: ChaseVariant::Sequential(kind),
                ..McConfig::default()
            };
            assert_batch_matches_scalar(
                r#"
                rel City(symbol, real) input.
                City(gotham, 0.3).
                Earthquake(C, Flip<0.5>) :- City(C, R).
                Trig(X, Flip<0.5>) :- Earthquake(X, 1).
                Alarm(X) :- Trig(X, 1).
            "#,
                &config,
                21,
            );
        }
    }

    #[test]
    fn random_policy_and_parallel_are_not_batchable() {
        assert!(!batched_variant(ChaseVariant::Parallel));
        assert!(!batched_variant(ChaseVariant::Sequential(
            PolicyKind::Random { seed: 1 }
        )));
        assert!(batched_variant(ChaseVariant::Saturating));
        assert!(batched_variant(ChaseVariant::Sequential(
            PolicyKind::Canonical
        )));
    }

    #[test]
    fn identical_lanes_share_one_world_allocation() {
        // Flip<1.0> draws 1 in every lane: the batch never splits and all
        // lanes alias one Rc world.
        let program = compile("R(Flip<1.0>) :- true.");
        let prepared = PreparedProgram::new(&program);
        let config = McConfig::default();
        let obs = run_batch(
            &program,
            &prepared,
            &program.initial_instance,
            &config,
            &[],
            0..8,
        );
        let first = match &obs[0] {
            LaneObs::World(w) => Rc::clone(w),
            other => panic!("expected a world, got {other:?}"),
        };
        assert_eq!(Rc::strong_count(&first), 9, "8 lanes + the local clone");
    }
}
