//! Step kernels: the functions `step_app` (Prop. 4.6) and `step_App`
//! (Prop. 5.3) as executable Markov kernels on the space of instances.
//!
//! A kernel supports two views:
//! * **sampling** — draw a follow-up instance (one transition of the
//!   Markov process of Cor. 4.7/5.4); and
//! * **branching** — for discrete programs, the full finite-support
//!   distribution of the transition, i.e. `step(D, ·)` as an explicit
//!   measure.
//!
//! Iterating the sampling view from an initial instance *is* the Markov
//! process whose push-forward along `lim-inst` defines the program's SPDB
//! semantics (Thm. 4.8/5.5).

use gdatalog_data::Instance;
use gdatalog_lang::{CompiledProgram, RuleKind};
use rand::Rng;

use crate::applicability::PreparedProgram;
use crate::exact::ExactConfig;
use crate::policy::ChasePolicy;
use crate::sequential::fire;
use crate::EngineError;

/// A Markov kernel on database instances. Absorbing states (no applicable
/// pair) return `None`; the identity-kernel behavior of the paper is then
/// up to the caller (a terminated chase stays put).
pub trait StepKernel {
    /// Draws one transition; `None` when `instance` is absorbing.
    ///
    /// # Errors
    /// Runtime distribution failures.
    fn sample_step(
        &mut self,
        instance: &Instance,
        rng: &mut dyn Rng,
    ) -> Result<Option<Instance>, EngineError>;

    /// The transition distribution as an explicit finite table (discrete
    /// programs only): follow-up instances with probabilities plus the
    /// truncated mass. `None` when `instance` is absorbing.
    ///
    /// # Errors
    /// [`EngineError::NotDiscrete`] for continuous programs.
    #[allow(clippy::type_complexity)]
    fn branch_step(
        &mut self,
        instance: &Instance,
        config: ExactConfig,
    ) -> Result<Option<(Vec<(Instance, f64)>, f64)>, EngineError>;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// The sequential kernel `step_app` for a fixed chase policy.
pub struct SequentialKernel<'p> {
    program: &'p CompiledProgram,
    prepared: PreparedProgram,
    policy: ChasePolicy,
}

impl<'p> SequentialKernel<'p> {
    /// Creates the kernel, planning the program's joins once.
    pub fn new(program: &'p CompiledProgram, policy: ChasePolicy) -> Self {
        let prepared = PreparedProgram::new(program);
        SequentialKernel {
            program,
            prepared,
            policy,
        }
    }
}

impl StepKernel for SequentialKernel<'_> {
    fn sample_step(
        &mut self,
        instance: &Instance,
        rng: &mut dyn Rng,
    ) -> Result<Option<Instance>, EngineError> {
        let index = self.prepared.new_index(instance);
        let app = self
            .prepared
            .applicable_pairs(self.program, instance, &index);
        if app.is_empty() {
            return Ok(None);
        }
        let pair = &app[self.policy.select(&app)];
        let fired = fire(
            self.program,
            &self.program.rules[pair.rule],
            &pair.valuation,
            rng,
        )
        .map_err(EngineError::Dist)?;
        let mut next = instance.clone();
        next.insert_fact(fired.fact);
        Ok(Some(next))
    }

    fn branch_step(
        &mut self,
        instance: &Instance,
        config: ExactConfig,
    ) -> Result<Option<(Vec<(Instance, f64)>, f64)>, EngineError> {
        let index = self.prepared.new_index(instance);
        let app = self
            .prepared
            .applicable_pairs(self.program, instance, &index);
        if app.is_empty() {
            return Ok(None);
        }
        let pair = app[self.policy.select(&app)].clone();
        match &self.program.rules[pair.rule].kind {
            RuleKind::Deterministic { .. } => {
                let next = crate::exact::apply_branch(self.program, &pair, &[], instance);
                Ok(Some((vec![(next, 1.0)], 0.0)))
            }
            RuleKind::Existential(_) => {
                let (branches, truncated) =
                    crate::exact::existential_branches(self.program, &pair, config.support_tol)?;
                let out = branches
                    .into_iter()
                    .map(|(outcomes, p)| {
                        (
                            crate::exact::apply_branch(self.program, &pair, &outcomes, instance),
                            p,
                        )
                    })
                    .collect();
                Ok(Some((out, truncated)))
            }
        }
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// The parallel kernel `step_App` (all applicable pairs fire at once).
pub struct ParallelKernel<'p> {
    program: &'p CompiledProgram,
    prepared: PreparedProgram,
}

impl<'p> ParallelKernel<'p> {
    /// Creates the kernel, planning the program's joins once.
    pub fn new(program: &'p CompiledProgram) -> Self {
        let prepared = PreparedProgram::new(program);
        ParallelKernel { program, prepared }
    }
}

impl StepKernel for ParallelKernel<'_> {
    fn sample_step(
        &mut self,
        instance: &Instance,
        rng: &mut dyn Rng,
    ) -> Result<Option<Instance>, EngineError> {
        crate::parallel::parallel_step_prepared(self.program, &self.prepared, instance, rng, None)
            .map(|o| o.map(|(d, _)| d))
            .map_err(EngineError::Dist)
    }

    fn branch_step(
        &mut self,
        instance: &Instance,
        config: ExactConfig,
    ) -> Result<Option<(Vec<(Instance, f64)>, f64)>, EngineError> {
        let index = self.prepared.new_index(instance);
        let app = self
            .prepared
            .applicable_pairs(self.program, instance, &index);
        if app.is_empty() {
            return Ok(None);
        }
        let (children, truncated) =
            crate::exact::parallel_round(self.program, instance, &app, config)?;
        Ok(Some((children, truncated)))
    }

    fn name(&self) -> &'static str {
        "parallel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    #[test]
    fn sequential_kernel_iterates_to_absorption() {
        let prog = compile("R(Flip<0.5>) :- true.");
        let mut k = SequentialKernel::new(&prog, ChasePolicy::new(PolicyKind::Canonical, &[]));
        let mut rng = StdRng::seed_from_u64(4);
        let mut state = prog.initial_instance.clone();
        let mut steps = 0;
        while let Some(next) = k.sample_step(&state, &mut rng).unwrap() {
            state = next;
            steps += 1;
            assert!(steps < 10);
        }
        assert_eq!(steps, 2);
        let r = prog.catalog.require("R").unwrap();
        assert_eq!(state.relation_len(r), 1);
    }

    #[test]
    fn branch_step_probabilities_sum_to_one() {
        let prog = compile("R(Flip<0.3>) :- true.");
        let mut k = SequentialKernel::new(&prog, ChasePolicy::new(PolicyKind::Canonical, &[]));
        let (branches, truncated) = k
            .branch_step(&prog.initial_instance, ExactConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(branches.len(), 2);
        let total: f64 = branches.iter().map(|(_, p)| p).sum();
        assert!((total + truncated - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_kernel_one_round() {
        let prog = compile(
            r#"
            Seed(1). Seed(2).
            R(X, Flip<0.5>) :- Seed(X).
        "#,
        );
        let mut k = ParallelKernel::new(&prog);
        let (branches, _) = k
            .branch_step(&prog.initial_instance, ExactConfig::default())
            .unwrap()
            .unwrap();
        // Two independent flips fire in one round: 4 children.
        assert_eq!(branches.len(), 4);
        let total: f64 = branches.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Absorbing state detection.
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = prog.initial_instance.clone();
        while let Some(next) = k.sample_step(&state, &mut rng).unwrap() {
            state = next;
        }
        assert!(k
            .branch_step(&state, ExactConfig::default())
            .unwrap()
            .is_none());
    }
}
