//! Evaluation backends: one trait unifying exact-sequential,
//! exact-parallel, and Monte-Carlo chase evaluation.
//!
//! Every backend drives the same interface: it evaluates one [`EvalJob`] —
//! a compiled program (plus, optionally, its pre-built chase plans), an
//! input instance, and one unified [`EvalOptions`] record — and feeds
//! weighted possible-world observations into a [`WorldSink`]. Exact
//! backends emit each world of the enumerated table once with its
//! probability; the Monte-Carlo backend **streams** each sampled run with
//! weight `1/runs` — so any statistic expressible as a sink is computed in
//! O(result) memory, independent of the number of runs.
//!
//! Backends are driven directly for custom evaluation strategies, or —
//! almost always — through the builder surface of
//! [`Session`](crate::Session)/[`Evaluation`](crate::Evaluation):
//!
//! ```
//! use gdatalog_core::{Engine, EvalJob, EvalOptions, ExactSequentialBackend, Backend};
//! use gdatalog_lang::SemanticsMode;
//! use gdatalog_pdb::WorldTableSink;
//!
//! let engine = Engine::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
//! let options = EvalOptions::default();
//! let job = EvalJob {
//!     program: engine.program(),
//!     prepared: Some(engine.prepared()),   // reuse the compile-once plans
//!     input: &engine.program().initial_instance,
//!     options: &options,
//!     observes: &[],                       // no conditioning
//! };
//! let mut sink = WorldTableSink::new();
//! ExactSequentialBackend.run(&job, &mut sink).unwrap();
//! assert_eq!(sink.finish().len(), 2);
//! ```

use gdatalog_data::Instance;
use gdatalog_lang::{CompiledObserve, CompiledProgram};
use gdatalog_pdb::{DeficitKind, PossibleWorlds, WorldSink};

use crate::applicability::PreparedProgram;
use crate::exact::{enumerate_parallel_prepared, enumerate_sequential_prepared, ExactConfig};
use crate::mc::{single_run, ChaseVariant, McConfig};
use crate::observe;
use crate::policy::{ChasePolicy, PolicyKind};
use crate::EngineError;

/// The unified evaluation configuration consumed by every [`Backend`].
///
/// This replaces the former split between `ExactConfig` (passed by value)
/// and `McConfig` (passed by reference): the builder owns one options
/// record, and each backend reads the fields that apply to it.
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Number of independent Monte-Carlo runs.
    pub runs: usize,
    /// Master seed for Monte-Carlo sampling; run `i` derives its own seed.
    pub seed: u64,
    /// Worker threads (1 = run on the calling thread). Used by the
    /// Monte-Carlo backend.
    pub threads: usize,
    /// Monte-Carlo batch size: how many runs the batched executor drives
    /// in lockstep, sharing the deterministic chase prefix and the
    /// per-step applicability/kernel work (see `crates/core/src/mc_batch.rs`).
    /// Results are bit-identical to the scalar path at any batch size;
    /// `1` disables batching. The default was chosen by the
    /// `mc_batch` criterion sweep. Deadline checks are cooperative at
    /// batch boundaries, so one batch bounds the deadline overshoot.
    pub batch: usize,
    /// Budget along any chase path: maximum depth for exact enumeration,
    /// maximum steps/rounds per Monte-Carlo run. Deeper paths are charged
    /// to the non-termination deficit (the paper's `err` event, §4.2).
    pub max_depth: usize,
    /// Tail mass at which countably-infinite supports are truncated during
    /// exact enumeration.
    pub support_tol: f64,
    /// Exact-enumeration paths whose probability falls below this threshold
    /// are pruned into the non-termination deficit (0 disables pruning).
    pub min_path_prob: f64,
    /// Chase procedure driving each Monte-Carlo run.
    pub variant: ChaseVariant,
    /// Chase policy for exact sequential enumeration (and the default
    /// sequential Monte-Carlo variant).
    pub policy: PolicyKind,
    /// Whether to keep auxiliary experiment relations in the observed
    /// worlds instead of projecting to the output schema (Remark 4.9).
    pub keep_aux: bool,
    /// Cooperative per-request deadline. Backends check it between
    /// bounded units of work — enumeration nodes for the exact backends,
    /// whole runs for Monte-Carlo — and abort with
    /// [`EngineError::DeadlineExceeded`] once it has passed. `None`
    /// (the default) never cancels.
    pub deadline: Option<std::time::Instant>,
    /// Markov-chain iterations discarded before the first kept sample
    /// (only read by [`crate::MhBackend`]).
    pub burn_in: usize,
    /// Markov-chain iterations between kept samples (1 = keep every
    /// post-burn-in state; only read by [`crate::MhBackend`]).
    pub thin: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            runs: 10_000,
            seed: 0xC0FFEE,
            threads: 1,
            batch: 64,
            max_depth: 10_000,
            support_tol: 1e-9,
            min_path_prob: 0.0,
            variant: ChaseVariant::Sequential(PolicyKind::Canonical),
            policy: PolicyKind::Canonical,
            keep_aux: false,
            deadline: None,
            burn_in: 500,
            thin: 1,
        }
    }
}

/// A validated Monte-Carlo run budget — the one place run-count
/// invariants live, shared by the fixed-run path
/// ([`Evaluation::sample`](crate::Evaluation::sample) /
/// [`EvalOptions::runs`]) and the adaptive path
/// ([`EssTarget`](crate::EssTarget)). Construct through
/// [`RunBudget::fixed`] / [`RunBudget::adaptive`] (or normalize an
/// ad-hoc value with [`RunBudget::validated`]); the constructors enforce
/// that lane batches are nonzero, the first scheduled batch is nonzero,
/// and the run cap admits at least one whole first batch
/// (`max_runs >= initial_batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Hard cap on the total run count.
    pub max_runs: usize,
    /// Runs scheduled before the first stopping-rule poll. On the fixed
    /// path this is the whole budget; the adaptive driver doubles from
    /// here.
    pub initial_batch: usize,
    /// Lane-batch size of the batched executor (see
    /// [`EvalOptions::batch`]); the adaptive driver grows the schedule in
    /// whole multiples of this so lane batches never straddle a poll.
    pub batch: usize,
}

impl RunBudget {
    /// A fixed budget: exactly `runs` runs, executed in lane batches of
    /// `batch` — one "scheduling batch" covering the whole budget.
    pub fn fixed(runs: usize, batch: usize) -> RunBudget {
        RunBudget {
            max_runs: runs,
            initial_batch: runs,
            batch,
        }
        .validated()
    }

    /// An adaptive budget: poll the stopping rule after `initial_batch`
    /// runs, never exceed `max_runs`, drive lane batches of `batch`.
    pub fn adaptive(max_runs: usize, initial_batch: usize, batch: usize) -> RunBudget {
        RunBudget {
            max_runs,
            initial_batch,
            batch,
        }
        .validated()
    }

    /// Normalizes the invariants: both batch sizes are at least 1, and
    /// the run cap admits at least one whole first batch.
    pub fn validated(mut self) -> RunBudget {
        self.batch = self.batch.max(1);
        self.initial_batch = self.initial_batch.max(1);
        self.max_runs = self.max_runs.max(self.initial_batch);
        self
    }

    /// Rounds a scheduled run count **up** to a whole number of lane
    /// batches, then clamps at the run cap (the final batch may be ragged
    /// only when the cap itself is). Saturating.
    pub fn round_to_batches(&self, runs: usize) -> usize {
        let whole = runs.div_ceil(self.batch).saturating_mul(self.batch);
        whole.min(self.max_runs)
    }
}

impl EvalOptions {
    /// The validated run budget of the fixed-run Monte-Carlo path.
    pub fn run_budget(&self) -> RunBudget {
        RunBudget::fixed(self.runs, self.batch)
    }

    /// The exact-enumeration slice of the options.
    pub fn exact_config(&self) -> ExactConfig {
        ExactConfig {
            max_depth: self.max_depth,
            support_tol: self.support_tol,
            min_path_prob: self.min_path_prob,
            deadline: self.deadline,
        }
    }

    /// The Monte-Carlo slice of the options.
    pub fn mc_config(&self) -> McConfig {
        McConfig {
            runs: self.runs,
            max_steps: self.max_depth,
            seed: self.seed,
            variant: self.variant,
            threads: self.threads,
            keep_aux: self.keep_aux,
            deadline: self.deadline,
        }
    }
}

/// One evaluation request as a backend sees it: the compiled program,
/// optionally its pre-built chase plans, the input instance, and the
/// options record.
///
/// `prepared` is the serving-layer fast path: when a program is compiled
/// once and evaluated many times (a [`Session`](crate::Session), a session
/// pool, a batch), the caller passes the shared
/// [`PreparedProgram`] and no backend re-plans rule
/// bodies per request. When absent, backends plan on the fly — correct,
/// just slower on repeated requests.
pub struct EvalJob<'a> {
    /// The compiled program under evaluation.
    pub program: &'a CompiledProgram,
    /// Pre-built chase plans for `program`, if the caller holds them.
    /// Must have been built from this very program.
    pub prepared: Option<&'a PreparedProgram>,
    /// The instance evaluation starts from.
    pub input: &'a Instance,
    /// The unified configuration record.
    pub options: &'a EvalOptions,
    /// Evidence to condition on (empty = unconditional). When present,
    /// backends emit **unnormalized** posterior weights — prior ×
    /// likelihood per world — and drop deficit observations (the
    /// conditional is taken given termination); callers self-normalize,
    /// e.g. through [`gdatalog_pdb::NormalizingSink`].
    pub observes: &'a [CompiledObserve],
}

/// The job's plans: shared when the caller holds them, else freshly built.
pub(crate) enum Plans<'a> {
    Shared(&'a PreparedProgram),
    Owned(Box<PreparedProgram>),
}

impl std::ops::Deref for Plans<'_> {
    type Target = PreparedProgram;
    fn deref(&self) -> &PreparedProgram {
        match self {
            Plans::Shared(p) => p,
            Plans::Owned(p) => p,
        }
    }
}

impl<'a> EvalJob<'a> {
    pub(crate) fn plans(&self) -> Plans<'a> {
        match self.prepared {
            Some(p) => Plans::Shared(p),
            None => Plans::Owned(Box::new(PreparedProgram::new(self.program))),
        }
    }
}

/// An evaluation strategy: drives the probabilistic chase of a job's
/// program on its input and feeds weighted possible-world observations
/// into `sink`.
///
/// The three shipped implementations are [`ExactSequentialBackend`]
/// (Def. 4.2), [`ExactParallelBackend`] (Def. 5.2), and [`McBackend`]
/// (path sampling, §4.3); by Theorems 6.1/6.2 they agree on the denoted
/// SPDB, which the test suite verifies rather than assumes.
pub trait Backend {
    /// The backend's name (for diagnostics and reports).
    fn name(&self) -> &'static str;

    /// Evaluates and streams observations into `sink`.
    ///
    /// # Errors
    /// [`EngineError::NotDiscrete`] if an exact backend meets a continuous
    /// distribution; [`EngineError::Dist`] on runtime parameter failures.
    fn run(&self, job: &EvalJob<'_>, sink: &mut dyn WorldSink) -> Result<(), EngineError>;
}

fn existential_rule_ids(program: &CompiledProgram) -> Vec<usize> {
    program
        .rules
        .iter()
        .filter(|r| r.is_existential())
        .map(|r| r.id)
        .collect()
}

/// Feeds an enumerated world table into a sink, applying the output-schema
/// projection unless `keep_aux`. Under conditioning (`observes` nonempty)
/// every world is emitted in **log space** ([`WorldSink::observe_log`])
/// with weight `ln p + log-likelihood` — finite even where the linear
/// product `p · L` underflows `f64` — zero-weight worlds are filtered out,
/// and deficit mass is dropped (the conditional is taken given
/// termination); the stream carries the **unnormalized** conditional,
/// which the evaluation terminals renormalize.
fn feed_table(
    program: &CompiledProgram,
    table: PossibleWorlds,
    keep_aux: bool,
    observes: &[CompiledObserve],
    sink: &mut dyn WorldSink,
) -> Result<(), EngineError> {
    let deficit = table.deficit();
    for (world, p) in table.into_worlds() {
        if p == 0.0 {
            continue;
        }
        if observes.is_empty() {
            let world = if keep_aux {
                world
            } else {
                program.project_output(&world)
            };
            sink.observe(world, p);
        } else {
            let lp = p.ln() + observe::log_weight(observes, &world)?;
            if lp == f64::NEG_INFINITY {
                continue;
            }
            let world = if keep_aux {
                world
            } else {
                program.project_output(&world)
            };
            sink.observe_log(world, lp);
        }
    }
    if observes.is_empty() {
        sink.observe_deficit(DeficitKind::Nontermination, deficit.nontermination);
        sink.observe_deficit(DeficitKind::Truncation, deficit.truncation);
    }
    Ok(())
}

/// Exact **sequential** chase-tree enumeration (Def. 4.2) under the
/// configured policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSequentialBackend;

impl Backend for ExactSequentialBackend {
    fn name(&self) -> &'static str {
        "exact-sequential"
    }

    fn run(&self, job: &EvalJob<'_>, sink: &mut dyn WorldSink) -> Result<(), EngineError> {
        let existential = existential_rule_ids(job.program);
        let mut policy = ChasePolicy::new(job.options.policy, &existential);
        let table = enumerate_sequential_prepared(
            job.program,
            &job.plans(),
            job.input,
            &mut policy,
            job.options.exact_config(),
        )?;
        feed_table(job.program, table, job.options.keep_aux, job.observes, sink)
    }
}

/// Exact **parallel** chase enumeration (Def. 5.2): all applicable pairs
/// fire at every node. Equal to the sequential result by Theorem 6.1.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactParallelBackend;

impl Backend for ExactParallelBackend {
    fn name(&self) -> &'static str {
        "exact-parallel"
    }

    fn run(&self, job: &EvalJob<'_>, sink: &mut dyn WorldSink) -> Result<(), EngineError> {
        let table = enumerate_parallel_prepared(
            job.program,
            &job.plans(),
            job.input,
            job.options.exact_config(),
        )?;
        feed_table(job.program, table, job.options.keep_aux, job.observes, sink)
    }
}

/// **Monte-Carlo** path sampling of the chase Markov process (§4.3/§5.2),
/// streaming each run into the sink with weight `1/runs`.
///
/// Works for continuous programs. Runs that exhaust the step budget are
/// streamed as [`DeficitKind::Nontermination`] observations, so weight
/// totals estimate the SPDB mass `α` of Def. 2.7.
///
/// Under conditioning (`job.observes` nonempty) this is
/// **likelihood-weighted** (importance) sampling in log space: run `i` is
/// emitted via [`WorldSink::observe_log`] with log-weight
/// `log L(world i) − ln runs`, runs failing a hard observation (and
/// budget-exhausted runs) are dropped, and the evaluation terminals
/// self-normalize — the classical self-normalized importance-sampling
/// estimator of the posterior, finite even when every likelihood
/// underflows linear `f64` (log-likelihood ≲ −745). The per-run weight is
/// a deterministic function of the run's world, so every determinism
/// guarantee below carries over unchanged.
///
/// With `threads > 1` and a sink that supports
/// [`fork`](gdatalog_pdb::WorldSink::fork), the run range is split into
/// contiguous per-worker chunks, each folded locally and joined back in
/// chunk order — results are **deterministic** (independent of thread
/// timing) because every run's seed derives from its run index. Sinks that
/// do not fork are fed sequentially regardless of `threads`.
#[derive(Debug, Clone, Copy, Default)]
pub struct McBackend;

/// One Monte-Carlo run's observation: a world with a linear or log-space
/// stream weight, unconditional deficit mass, or nothing (dropped run).
/// Deterministic per run index.
enum McObs {
    Linear(Instance, f64),
    Log(Instance, f64),
    Deficit(f64),
    Dropped,
}

/// Streams the Monte-Carlo runs of `range` into `sink`, with the same
/// deterministic chunked parallelism as [`McBackend::run`].
///
/// `raw` selects the emission convention:
/// - `false` (the [`McBackend`] contract): each run carries its `1/runs`
///   share — linear weight `1/runs` unconditioned, log-weight
///   `log L − ln runs` conditioned, deficits `1/runs`.
/// - `true` (the adaptive-driver contract): **per-run** weights with no
///   `1/runs` normalization — log-weight `0` unconditioned / `log L`
///   conditioned, deficits `1` — so a caller can grow the run count in
///   batches against one persistent sink and divide by the final total
///   itself.
pub(crate) fn mc_stream(
    job: &EvalJob<'_>,
    sink: &mut dyn WorldSink,
    range: std::ops::Range<usize>,
    raw: bool,
) -> Result<(), EngineError> {
    let (program, input) = (job.program, job.input);
    let runs = range.len();
    if runs == 0 {
        return Ok(());
    }
    let weight = if raw { 1.0 } else { 1.0 / runs as f64 };
    let log_shift = if raw { 0.0 } else { (runs as f64).ln() };
    let observes = job.observes;
    let existential = existential_rule_ids(program);
    let prepared = job.plans();
    let config = job.options.mc_config();
    let threads = job.options.threads.max(1).min(runs);

    let observe_run = |run_ix: usize| -> Result<McObs, EngineError> {
        match single_run(program, &prepared, input, &config, &existential, run_ix)? {
            Some(world) => {
                if observes.is_empty() {
                    if raw {
                        Ok(McObs::Log(world, 0.0))
                    } else {
                        Ok(McObs::Linear(world, weight))
                    }
                } else {
                    let lw = observe::log_weight(observes, &world)?;
                    if lw == f64::NEG_INFINITY {
                        Ok(McObs::Dropped)
                    } else {
                        Ok(McObs::Log(world, lw - log_shift))
                    }
                }
            }
            None if observes.is_empty() => Ok(McObs::Deficit(weight)),
            // Conditioning is taken given termination: budget-exhausted
            // runs are dropped like hard-rejected ones.
            None => Ok(McObs::Dropped),
        }
    };

    let emit = |sink: &mut dyn WorldSink, obs: McObs| match obs {
        McObs::Linear(world, w) => sink.observe(world, w),
        McObs::Log(world, lw) => sink.observe_log(world, lw),
        McObs::Deficit(w) => sink.observe_deficit(DeficitKind::Nontermination, w),
        McObs::Dropped => {}
    };

    // Drives one contiguous subrange of runs into one sink, reporting a
    // failure with the run index it occurred at. Two interchangeable
    // strategies — per-lane results are bit-identical by construction:
    //
    // - scalar: one `single_run` per run index, emitted itemwise.
    // - batched: `batch` runs execute in lockstep as lane groups sharing
    //   the deterministic prefix and per-step chase work
    //   (`crate::mc_batch`), then one `observe_batch` emits the whole
    //   lane batch by reference. Deadline checks are cooperative at
    //   batch boundaries. Conditioned log-weights are a deterministic
    //   function of the final world, so lanes sharing one terminated
    //   world (one `Rc`) evaluate the likelihood once.
    let batch_size = job.options.run_budget().batch;
    let batched = batch_size > 1 && crate::mc_batch::batched_variant(config.variant);

    let drive_scalar = |sink: &mut dyn WorldSink,
                        chunk: std::ops::Range<usize>|
     -> Result<(), (usize, EngineError)> {
        for run_ix in chunk {
            match observe_run(run_ix) {
                Ok(obs) => emit(sink, obs),
                Err(e) => return Err((run_ix, e)),
            }
        }
        Ok(())
    };

    let drive_batched = |sink: &mut dyn WorldSink,
                         chunk: std::ops::Range<usize>|
     -> Result<(), (usize, EngineError)> {
        use crate::mc_batch::LaneObs;
        use gdatalog_pdb::BatchObs;
        let mut lo = chunk.start;
        while lo < chunk.end {
            let hi = (lo + batch_size).min(chunk.end);
            if let Err(e) = crate::exact::check_deadline(config.deadline) {
                return Err((lo, e));
            }
            let lanes = crate::mc_batch::run_batch(
                program,
                &prepared,
                input,
                &config,
                &existential,
                lo..hi,
            );
            // One likelihood evaluation per distinct shared world,
            // keyed by the world's allocation (worker-local `Rc`s).
            let mut likelihoods: Vec<(*const Instance, f64)> = Vec::new();
            let mut batch_obs: Vec<BatchObs<'_>> = Vec::with_capacity(lanes.len());
            let mut failure: Option<(usize, EngineError)> = None;
            for (off, lane) in lanes.iter().enumerate() {
                match lane {
                    LaneObs::World(world) => {
                        if observes.is_empty() {
                            if raw {
                                batch_obs.push(BatchObs::LogWorld(world, 0.0));
                            } else {
                                batch_obs.push(BatchObs::World(world, weight));
                            }
                            continue;
                        }
                        let key = std::rc::Rc::as_ptr(world);
                        let lw = match likelihoods.iter().find(|(k, _)| *k == key) {
                            Some(&(_, lw)) => lw,
                            None => match observe::log_weight(observes, world) {
                                Ok(lw) => {
                                    likelihoods.push((key, lw));
                                    lw
                                }
                                Err(e) => {
                                    failure = Some((lo + off, e));
                                    break;
                                }
                            },
                        };
                        if lw != f64::NEG_INFINITY {
                            batch_obs.push(BatchObs::LogWorld(world, lw - log_shift));
                        }
                    }
                    LaneObs::Budget => {
                        // Conditioning is taken given termination:
                        // budget-exhausted runs are dropped.
                        if observes.is_empty() {
                            batch_obs.push(BatchObs::Deficit(DeficitKind::Nontermination, weight));
                        }
                    }
                    LaneObs::Failed(err) => {
                        failure = Some((lo + off, EngineError::Dist(err.clone())));
                        break;
                    }
                }
            }
            sink.observe_batch(&batch_obs);
            if let Some(e) = failure {
                return Err(e);
            }
            lo = hi;
        }
        Ok(())
    };

    let drive = |sink: &mut dyn WorldSink, chunk: std::ops::Range<usize>| {
        if batched {
            drive_batched(sink, chunk)
        } else {
            drive_scalar(sink, chunk)
        }
    };

    if threads <= 1 || sink.fork().is_none() {
        return drive(sink, range).map_err(|(_, e)| e);
    }

    // Contiguous chunks, folded worker-locally into forked sinks and
    // joined back in chunk order: deterministic regardless of timing.
    // Every worker runs its whole chunk (stopping only at its *own*
    // first error), so the set of per-chunk outcomes — and therefore
    // the smallest-index error chosen below — does not depend on
    // thread scheduling.
    type ChunkResult = Result<Box<dyn WorldSink>, (usize, EngineError)>;
    let chunks: Vec<ChunkResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let lo = range.start + worker * runs / threads;
                let hi = range.start + (worker + 1) * runs / threads;
                let mut local = sink.fork().expect("fork checked above");
                let drive = &drive;
                scope.spawn(move || -> ChunkResult {
                    drive(&mut *local, lo..hi)?;
                    Ok(local)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Report the smallest-index failure (deterministic: each chunk's
    // first error is fixed by the per-run seeds); otherwise join the
    // chunks in run order.
    let mut first_error: Option<(usize, EngineError)> = None;
    let mut done = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        match chunk {
            Ok(local) => done.push(local),
            Err((ix, e)) => {
                if first_error.as_ref().is_none_or(|(best, _)| ix < *best) {
                    first_error = Some((ix, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    for local in done {
        sink.join(local);
    }
    Ok(())
}

impl Backend for McBackend {
    fn name(&self) -> &'static str {
        "monte-carlo"
    }

    fn run(&self, job: &EvalJob<'_>, sink: &mut dyn WorldSink) -> Result<(), EngineError> {
        mc_stream(job, sink, 0..job.options.runs, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::{tuple, Fact};
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use gdatalog_pdb::{EmpiricalSink, MarginalSink, WorldTableSink};
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    fn drive(
        backend: &dyn Backend,
        prog: &CompiledProgram,
        opts: &EvalOptions,
        sink: &mut dyn WorldSink,
    ) {
        backend
            .run(
                &EvalJob {
                    program: prog,
                    prepared: None,
                    input: &prog.initial_instance,
                    options: opts,
                    observes: &[],
                },
                sink,
            )
            .unwrap();
    }

    #[test]
    fn exact_backends_agree() {
        let prog = compile("R(Flip<0.25>) :- true. S(X) :- R(X).");
        let opts = EvalOptions::default();
        let mut seq = WorldTableSink::new();
        drive(&ExactSequentialBackend, &prog, &opts, &mut seq);
        let mut par = WorldTableSink::new();
        drive(&ExactParallelBackend, &prog, &opts, &mut par);
        let (a, b) = (seq.finish(), par.finish());
        assert!(a.total_variation(&b) < 1e-12);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn mc_streaming_marginal_matches_materialized() {
        let prog = compile("R(Flip<0.3>) :- true.");
        let r = prog.catalog.require("R").unwrap();
        let fact = Fact::new(r, tuple![1i64]);
        let opts = EvalOptions {
            runs: 5_000,
            seed: 42,
            ..EvalOptions::default()
        };
        let mut streaming = MarginalSink::new(fact.clone());
        drive(&McBackend, &prog, &opts, &mut streaming);
        let mut materialized = EmpiricalSink::new();
        drive(&McBackend, &prog, &opts, &mut materialized);
        let pdb = materialized.finish();
        assert_eq!(pdb.runs(), 5_000);
        assert!((streaming.finish() - pdb.marginal(&fact)).abs() < 1e-12);
    }

    #[test]
    fn mc_multithreaded_streaming_is_deterministic() {
        let prog = compile("R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.");
        let r = prog.catalog.require("R").unwrap();
        let fact = Fact::new(r, tuple![1i64]);
        let single = EvalOptions {
            runs: 4_000,
            seed: 9,
            ..EvalOptions::default()
        };
        let multi = EvalOptions {
            threads: 4,
            ..single
        };
        let run = |opts: &EvalOptions| {
            let mut sink = MarginalSink::new(fact.clone());
            drive(&McBackend, &prog, opts, &mut sink);
            sink.finish()
        };
        let a = run(&multi);
        let b = run(&multi);
        assert_eq!(a.to_bits(), b.to_bits(), "repeat runs bit-identical");
        assert!((a - run(&single)).abs() < 1e-12, "thread-count invariant");
    }

    #[test]
    fn shared_plans_change_nothing() {
        // A job carrying pre-built plans is bit-identical to one that
        // plans on the fly — the serving layer's cache-reuse guarantee.
        let prog = compile("R(Flip<0.5>) :- true. S(X) :- R(X).");
        let r = prog.catalog.require("R").unwrap();
        let fact = Fact::new(r, tuple![1i64]);
        let opts = EvalOptions {
            runs: 2_000,
            seed: 13,
            ..EvalOptions::default()
        };
        let prepared = PreparedProgram::new(&prog);
        let mut with = MarginalSink::new(fact.clone());
        McBackend
            .run(
                &EvalJob {
                    program: &prog,
                    prepared: Some(&prepared),
                    input: &prog.initial_instance,
                    options: &opts,
                    observes: &[],
                },
                &mut with,
            )
            .unwrap();
        let mut without = MarginalSink::new(fact.clone());
        drive(&McBackend, &prog, &opts, &mut without);
        assert_eq!(with.finish().to_bits(), without.finish().to_bits());
    }

    #[test]
    fn mc_budget_exhaustion_streams_deficit() {
        let prog = compile("C(0.0). C(Normal<V, 1.0>) :- C(V).");
        let opts = EvalOptions {
            runs: 20,
            max_depth: 25,
            seed: 1,
            ..EvalOptions::default()
        };
        let mut sink = WorldTableSink::new();
        drive(&McBackend, &prog, &opts, &mut sink);
        let table = sink.finish();
        assert_eq!(table.len(), 0);
        assert!((table.deficit().nontermination - 1.0).abs() < 1e-9);
    }
}
