//! The applicable-pair set `App(D)` of §3.3: pairs `(φ̂, ā)` such that the
//! instance satisfies the rule body under `ā` but not the head.
//!
//! For deterministic rules "head satisfied" means the instantiated head
//! fact is present; for existential rules it means an auxiliary fact with
//! the instantiated *key* already exists (the `∃y` in rule (3.A)) — which,
//! combined with the induced FD of §3.5, realizes the sample-once
//! discipline.

use gdatalog_data::{Instance, Tuple, Value};
use gdatalog_datalog::{for_each_body_match, InstanceIndex, Term as DlTerm};
use gdatalog_lang::{CompiledProgram, CompiledRule, RuleKind};

/// An applicable pair `(rule, ā)`: rule id plus the valuation of the
/// rule's body variables (outcome variables of delivery rules are bound by
/// the auxiliary body atom, so every body match binds all of them).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppPair {
    /// Index into [`CompiledProgram::rules`].
    pub rule: usize,
    /// Full valuation of the rule's variables, in variable order.
    pub valuation: Tuple,
}

/// Evaluates a deterministic term under a valuation.
pub(crate) fn eval_term(term: &DlTerm, valuation: &Tuple) -> Value {
    match term {
        DlTerm::Const(c) => c.clone(),
        DlTerm::Var(v) => valuation[*v].clone(),
    }
}

/// Evaluates a list of terms under a valuation.
pub(crate) fn eval_terms(terms: &[DlTerm], valuation: &Tuple) -> Vec<Value> {
    terms.iter().map(|t| eval_term(t, valuation)).collect()
}

/// Whether the head of `rule` is satisfied in `instance` under `valuation`
/// (the `D ⊨ φ̂h(ā)` test of §3.3).
pub fn head_satisfied(
    rule: &CompiledRule,
    valuation: &Tuple,
    instance: &Instance,
    index: &mut InstanceIndex<'_>,
) -> bool {
    match &rule.kind {
        RuleKind::Deterministic { head } => {
            let fact: Tuple = head
                .args
                .iter()
                .map(|t| eval_term(t, valuation))
                .collect();
            instance.contains(head.rel, &fact)
        }
        RuleKind::Existential(e) => {
            let key = eval_terms(&e.key_terms, valuation);
            let key_cols: Vec<usize> = (0..key.len()).collect();
            !index.probe(e.aux_rel, &key_cols, &key).is_empty()
        }
    }
}

/// Computes `App(D)` for the whole program, in canonical order (rule id,
/// then valuation order). The canonical order makes chase policies
/// well-defined *functions of the instance* — i.e. genuine selections of
/// the multifunction `App` in the sense of Lemma 3.6(ii).
pub fn applicable_pairs(program: &CompiledProgram, instance: &Instance) -> Vec<AppPair> {
    let mut out: Vec<AppPair> = Vec::new();
    let mut index = InstanceIndex::new(instance);
    for rule in &program.rules {
        let mut seen_start = out.len();
        for_each_body_match(&rule.body, rule.n_vars, instance, &mut |binding| {
            // Complete the binding into a total valuation; unbound slots
            // (impossible for validated rules, but defensively) get Int(0).
            let valuation: Tuple = binding
                .iter()
                .map(|b| b.clone().unwrap_or(Value::Int(0)))
                .collect();
            out.push(AppPair {
                rule: rule.id,
                valuation,
            });
        });
        // Dedup repeated valuations (a body can match the same binding
        // through different derivations) and drop head-satisfied pairs.
        let tail = &mut out[seen_start..];
        tail.sort();
        let mut kept = seen_start;
        for i in seen_start..out.len() {
            let pair = out[i].clone();
            if kept > seen_start && out[kept - 1] == pair {
                continue;
            }
            if !head_satisfied(rule, &pair.valuation, instance, &mut index) {
                out[kept] = pair;
                kept += 1;
            }
        }
        out.truncate(kept);
        seen_start = kept;
        let _ = seen_start;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    #[test]
    fn bodyless_rule_applicable_once() {
        let prog = compile("R(Flip<0.5>) :- true.");
        let app = applicable_pairs(&prog, &prog.initial_instance);
        // Only the existential rule (3.A) is applicable: the delivery rule
        // needs an aux fact.
        assert_eq!(app.len(), 1);
        assert_eq!(app[0].rule, 0);
        assert_eq!(app[0].valuation, Tuple::empty());
    }

    #[test]
    fn sample_once_blocks_refiring() {
        let prog = compile("R(Flip<0.5>) :- true.");
        let aux = prog.aux_relations[0];
        let mut d = prog.initial_instance.clone();
        d.insert(aux, tuple![0.5, 1i64]);
        let app = applicable_pairs(&prog, &d);
        // Existential rule now blocked; delivery rule applicable.
        assert_eq!(app.len(), 1);
        assert_eq!(app[0].rule, 1);
        // After delivery fires, nothing is applicable.
        let r = prog.catalog.require("R").unwrap();
        d.insert(r, tuple![1i64]);
        assert!(applicable_pairs(&prog, &d).is_empty());
    }

    #[test]
    fn per_city_experiments() {
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            City(metropolis, 0.2).
            Earthquake(C, Flip<0.1>) :- City(C, R).
        "#,
        );
        let app = applicable_pairs(&prog, &prog.initial_instance);
        assert_eq!(app.len(), 2, "one experiment per city");
        // Canonical order: valuations sorted.
        assert!(app[0].valuation < app[1].valuation);
    }

    #[test]
    fn deterministic_rule_blocked_by_existing_fact() {
        let prog = compile(
            r#"
            Unit(H, C) :- House(H, C).
            House(h1, gotham).
        "#,
        );
        let app = applicable_pairs(&prog, &prog.initial_instance);
        assert_eq!(app.len(), 1);
        let mut d = prog.initial_instance.clone();
        let unit = prog.catalog.require("Unit").unwrap();
        d.insert(unit, tuple!["h1", "gotham"]);
        assert!(applicable_pairs(&prog, &d).is_empty());
    }

    #[test]
    fn duplicate_derivations_collapse() {
        // Unit can be derived from two body atoms with the same binding.
        let prog = compile(
            r#"
            P(X) :- Q(X), Q(X).
            Q(1).
        "#,
        );
        let app = applicable_pairs(&prog, &prog.initial_instance);
        assert_eq!(app.len(), 1);
    }
}
