//! The applicable-pair set `App(D)` of §3.3: pairs `(φ̂, ā)` such that the
//! instance satisfies the rule body under `ā` but not the head.
//!
//! For deterministic rules "head satisfied" means the instantiated head
//! fact is present; for existential rules it means an auxiliary fact with
//! the instantiated *key* already exists (the `∃y` in rule (3.A)) — which,
//! combined with the induced FD of §3.5, realizes the sample-once
//! discipline.
//!
//! [`PreparedProgram`] is the compile-once artifact the chase hot paths
//! run on: every rule body is planned ([`BodyPlan`]) and every index the
//! program will ever probe — body probes, existential head-key probes, and
//! the deterministic fragment's probes — is interned into **one**
//! [`IndexSpecs`] table, so a single incrementally maintained
//! [`InstanceIndex`] serves the entire chase step.

use gdatalog_data::{Instance, Tuple, Value};
use gdatalog_datalog::{BodyPlan, IndexSpecs, InstanceIndex, PlannedProgram, Term as DlTerm};
use gdatalog_lang::{CompiledProgram, CompiledRule, RuleKind};

/// An applicable pair `(rule, ā)`: rule id plus the valuation of the
/// rule's body variables (outcome variables of delivery rules are bound by
/// the auxiliary body atom, so every body match binds all of them).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppPair {
    /// Index into [`CompiledProgram::rules`].
    pub rule: usize,
    /// Full valuation of the rule's variables, in variable order.
    pub valuation: Tuple,
}

/// Evaluates a deterministic term under a valuation.
pub(crate) fn eval_term(term: &DlTerm, valuation: &Tuple) -> Value {
    match term {
        DlTerm::Const(c) => c.clone(),
        DlTerm::Var(v) => valuation[*v].clone(),
    }
}

/// Evaluates a list of terms under a valuation.
pub(crate) fn eval_terms(terms: &[DlTerm], valuation: &Tuple) -> Vec<Value> {
    terms.iter().map(|t| eval_term(t, valuation)).collect()
}

/// Completes a body-match binding into a total valuation tuple.
///
/// Validated rules are safe (every rule variable occurs in the body), so
/// every slot must be bound; an unbound slot is a compiler/engine logic
/// error and surfaces as a panic instead of being papered over with a
/// fabricated value.
fn valuation_of(binding: &[Option<Value>]) -> Tuple {
    binding
        .iter()
        .enumerate()
        .map(|(v, b)| {
            b.clone().unwrap_or_else(|| {
                panic!(
                    "variable v{v} unbound after a body match — unsafe rule \
                     slipped past validation"
                )
            })
        })
        .collect()
}

/// A compiled program with planned bodies and a unified index layout —
/// built once, shared by every chase run over the program.
pub struct PreparedProgram {
    specs: IndexSpecs,
    plans: Vec<BodyPlan>,
    /// Per rule: the interned spec probing the existential auxiliary
    /// relation on its full key (None for deterministic rules and for
    /// empty keys, which degrade to a relation-emptiness test).
    head_probe: Vec<Option<usize>>,
    det: PlannedProgram,
}

impl PreparedProgram {
    /// Plans every rule of `program` and the deterministic fragment into
    /// one shared spec table.
    pub fn new(program: &CompiledProgram) -> PreparedProgram {
        let mut specs = IndexSpecs::new();
        let plans = program
            .rules
            .iter()
            .map(|r| BodyPlan::new(&r.body, r.n_vars, &mut specs))
            .collect();
        let head_probe = program
            .rules
            .iter()
            .map(|r| match &r.kind {
                RuleKind::Existential(e) if !e.key_terms.is_empty() => {
                    let key_cols: Vec<usize> = (0..e.key_terms.len()).collect();
                    Some(specs.intern(e.aux_rel, &key_cols))
                }
                _ => None,
            })
            .collect();
        let det = PlannedProgram::new(
            &crate::saturate::deterministic_fragment(program),
            &mut specs,
        );
        PreparedProgram {
            specs,
            plans,
            head_probe,
            det,
        }
    }

    /// The unified index spec table.
    pub fn specs(&self) -> &IndexSpecs {
        &self.specs
    }

    /// The planned deterministic fragment (for saturation between
    /// sampling steps).
    pub fn det(&self) -> &PlannedProgram {
        &self.det
    }

    /// The body plan of rule `rule`.
    pub fn plan(&self, rule: usize) -> &BodyPlan {
        &self.plans[rule]
    }

    /// A freshly built index over `instance`, laid out for this program.
    pub fn new_index(&self, instance: &Instance) -> InstanceIndex {
        InstanceIndex::built(&self.specs, instance)
    }

    /// Whether the head of `rule` is satisfied in `instance` under
    /// `valuation` (the `D ⊨ φ̂h(ā)` test of §3.3).
    pub fn head_satisfied(
        &self,
        rule_ix: usize,
        rule: &CompiledRule,
        valuation: &Tuple,
        instance: &Instance,
        index: &InstanceIndex,
    ) -> bool {
        match &rule.kind {
            RuleKind::Deterministic { head } => {
                let fact: Tuple = head.args.iter().map(|t| eval_term(t, valuation)).collect();
                instance.contains(head.rel, &fact)
            }
            RuleKind::Existential(e) => match self.head_probe[rule_ix] {
                Some(spec) => {
                    let key = eval_terms(&e.key_terms, valuation);
                    index.contains_key(spec, &key)
                }
                None => instance.relation_len(e.aux_rel) > 0,
            },
        }
    }

    /// Appends the applicable pairs of rule `rule_ix` to `out`, in
    /// canonical (valuation) order with duplicates collapsed.
    fn push_applicable(
        &self,
        program: &CompiledProgram,
        rule_ix: usize,
        instance: &Instance,
        index: &InstanceIndex,
        out: &mut Vec<AppPair>,
    ) {
        let rule = &program.rules[rule_ix];
        let seen_start = out.len();
        self.plans[rule_ix].for_each_match(instance, index, &mut |binding| {
            out.push(AppPair {
                rule: rule_ix,
                valuation: valuation_of(binding),
            });
        });
        // Dedup repeated valuations (a body can match the same binding
        // through different derivations) and drop head-satisfied pairs.
        out[seen_start..].sort();
        let mut kept = seen_start;
        for i in seen_start..out.len() {
            let pair = out[i].clone();
            if kept > seen_start && out[kept - 1] == pair {
                continue;
            }
            if !self.head_satisfied(rule_ix, rule, &pair.valuation, instance, index) {
                out[kept] = pair;
                kept += 1;
            }
        }
        out.truncate(kept);
    }

    /// Computes `App(D)` against a maintained `index` (which must be in
    /// lockstep with `instance`), in canonical order (rule id, then
    /// valuation order). The canonical order makes chase policies
    /// well-defined *functions of the instance* — i.e. genuine selections
    /// of the multifunction `App` in the sense of Lemma 3.6(ii).
    pub fn applicable_pairs(
        &self,
        program: &CompiledProgram,
        instance: &Instance,
        index: &InstanceIndex,
    ) -> Vec<AppPair> {
        let mut out: Vec<AppPair> = Vec::new();
        for rule_ix in 0..program.rules.len() {
            self.push_applicable(program, rule_ix, instance, index, &mut out);
        }
        out
    }

    /// Computes the applicable pairs of **existential** rules only
    /// (canonical order), assuming the instance is deterministically
    /// saturated — the selection the saturating chase samples from.
    pub fn applicable_existential_pairs(
        &self,
        program: &CompiledProgram,
        instance: &Instance,
        index: &InstanceIndex,
    ) -> Vec<AppPair> {
        let mut out: Vec<AppPair> = Vec::new();
        for (rule_ix, rule) in program.rules.iter().enumerate() {
            if rule.is_existential() {
                self.push_applicable(program, rule_ix, instance, index, &mut out);
            }
        }
        out
    }
}

/// Computes `App(D)` for the whole program from scratch (plans the program
/// and builds a fresh index per call). Diagnostic/compatibility entry
/// point — hot paths hold a [`PreparedProgram`] and a maintained index.
pub fn applicable_pairs(program: &CompiledProgram, instance: &Instance) -> Vec<AppPair> {
    let prepared = PreparedProgram::new(program);
    let index = prepared.new_index(instance);
    prepared.applicable_pairs(program, instance, &index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    #[test]
    fn bodyless_rule_applicable_once() {
        let prog = compile("R(Flip<0.5>) :- true.");
        let app = applicable_pairs(&prog, &prog.initial_instance);
        // Only the existential rule (3.A) is applicable: the delivery rule
        // needs an aux fact.
        assert_eq!(app.len(), 1);
        assert_eq!(app[0].rule, 0);
        assert_eq!(app[0].valuation, Tuple::empty());
    }

    #[test]
    fn sample_once_blocks_refiring() {
        let prog = compile("R(Flip<0.5>) :- true.");
        let aux = prog.aux_relations[0];
        let mut d = prog.initial_instance.clone();
        d.insert(aux, tuple![0.5, 1i64]);
        let app = applicable_pairs(&prog, &d);
        // Existential rule now blocked; delivery rule applicable.
        assert_eq!(app.len(), 1);
        assert_eq!(app[0].rule, 1);
        // After delivery fires, nothing is applicable.
        let r = prog.catalog.require("R").unwrap();
        d.insert(r, tuple![1i64]);
        assert!(applicable_pairs(&prog, &d).is_empty());
    }

    #[test]
    fn per_city_experiments() {
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            City(metropolis, 0.2).
            Earthquake(C, Flip<0.1>) :- City(C, R).
        "#,
        );
        let app = applicable_pairs(&prog, &prog.initial_instance);
        assert_eq!(app.len(), 2, "one experiment per city");
        // Canonical order: valuations sorted.
        assert!(app[0].valuation < app[1].valuation);
    }

    #[test]
    fn deterministic_rule_blocked_by_existing_fact() {
        let prog = compile(
            r#"
            Unit(H, C) :- House(H, C).
            House(h1, gotham).
        "#,
        );
        let app = applicable_pairs(&prog, &prog.initial_instance);
        assert_eq!(app.len(), 1);
        let mut d = prog.initial_instance.clone();
        let unit = prog.catalog.require("Unit").unwrap();
        d.insert(unit, tuple!["h1", "gotham"]);
        assert!(applicable_pairs(&prog, &d).is_empty());
    }

    #[test]
    fn duplicate_derivations_collapse() {
        // Unit can be derived from two body atoms with the same binding.
        let prog = compile(
            r#"
            P(X) :- Q(X), Q(X).
            Q(1).
        "#,
        );
        let app = applicable_pairs(&prog, &prog.initial_instance);
        assert_eq!(app.len(), 1);
    }

    #[test]
    fn prepared_pairs_match_scratch_pairs() {
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Trig(X, Flip<0.6>) :- Earthquake(X, 1).
        "#,
        );
        let prepared = PreparedProgram::new(&prog);
        let mut d = prog.initial_instance.clone();
        let mut index = prepared.new_index(&d);
        assert_eq!(
            prepared.applicable_pairs(&prog, &d, &index),
            applicable_pairs(&prog, &d)
        );
        // Mutate + absorb, and the maintained index stays equivalent.
        let aux = prog.aux_relations[0];
        let t = tuple!["gotham", 0.1, 1i64];
        assert!(d.insert(aux, t.clone()));
        index.absorb(aux, &t);
        assert_eq!(
            prepared.applicable_pairs(&prog, &d, &index),
            applicable_pairs(&prog, &d)
        );
    }
}
