//! Sequential chase steps and runs (Def. 4.1 / Def. 4.2 of the paper).
//!
//! A run starts at `D₀`, repeatedly computes `App(D)`, lets the chase
//! policy (a measurable selection) pick one applicable pair, and fires it:
//! deterministic rules insert their head fact, existential rules sample
//! their distributions and insert the auxiliary experiment fact. A run that
//! reaches `App(D) = {(□,□)}` (no applicable pair) has *terminated* and
//! `lim-inst` maps it to its final instance; a run still alive at the step
//! budget corresponds to the error event `err` of §4.2.

use gdatalog_data::{Fact, Instance, Tuple, Value};
use gdatalog_dist::DistError;
use gdatalog_lang::{CompiledProgram, CompiledRule, RuleKind};
use rand::Rng;

use crate::applicability::{eval_term, eval_terms, AppPair, PreparedProgram};
use crate::policy::ChasePolicy;

/// One recorded chase step (the path of the Markov process, §4.2).
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Which rule fired.
    pub rule: usize,
    /// The valuation `ā`.
    pub valuation: Tuple,
    /// Values sampled by this step (empty for deterministic rules).
    pub sampled: Vec<Value>,
    /// Log-density of the sampled values under their distributions
    /// (0 for deterministic steps).
    pub log_density: f64,
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// `App(D)` became empty: the path is finite and maximal, and
    /// `lim-inst` maps it to the final instance.
    Terminated,
    /// The step budget was exhausted: operationally the paper's error
    /// event `err` (the run may be non-terminating).
    BudgetExhausted,
}

/// A completed chase run.
#[derive(Debug, Clone)]
pub struct ChaseRun {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// The final (or last reached) instance, including auxiliary relations.
    pub instance: Instance,
    /// Number of chase steps performed.
    pub steps: usize,
    /// Total log-density of all sampled values along the path.
    pub log_weight: f64,
    /// Per-step trace (empty unless requested).
    pub trace: Vec<TraceStep>,
}

/// The result of firing one rule: the new fact plus sampling bookkeeping.
pub(crate) struct Fired {
    pub fact: Fact,
    pub sampled: Vec<Value>,
    pub log_density: f64,
}

/// Fires `rule` under `valuation`, sampling existential outcomes from
/// `rng`. Does not insert the fact (callers differ in how they apply it).
pub(crate) fn fire(
    program: &CompiledProgram,
    rule: &CompiledRule,
    valuation: &Tuple,
    rng: &mut dyn Rng,
) -> Result<Fired, DistError> {
    let _ = program;
    match &rule.kind {
        RuleKind::Deterministic { head } => {
            let tuple: Tuple = head.args.iter().map(|t| eval_term(t, valuation)).collect();
            Ok(Fired {
                fact: Fact::new(head.rel, tuple),
                sampled: Vec::new(),
                log_density: 0.0,
            })
        }
        RuleKind::Existential(e) => {
            let mut values = eval_terms(&e.key_terms, valuation);
            let mut sampled = Vec::with_capacity(e.samples.len());
            let mut log_density = 0.0;
            for spec in &e.samples {
                let params = eval_terms(&spec.param_terms, valuation);
                let outcome = spec.dist.sample(&params, rng)?;
                log_density += spec.dist.log_density(&params, &outcome)?;
                sampled.push(outcome.clone());
                values.push(outcome);
            }
            Ok(Fired {
                fact: Fact::new(e.aux_rel, Tuple::from(values)),
                sampled,
                log_density,
            })
        }
    }
}

/// Runs the sequential chase from `input` (which must already include the
/// program's initial facts if desired) until termination or `max_steps`.
///
/// # Errors
/// Returns a [`DistError`] if a sampled rule receives invalid parameters
/// at runtime (e.g. a negative variance flowing in from data).
pub fn run_sequential(
    program: &CompiledProgram,
    input: &Instance,
    policy: &mut ChasePolicy,
    rng: &mut dyn Rng,
    max_steps: usize,
    record_trace: bool,
) -> Result<ChaseRun, DistError> {
    let prepared = PreparedProgram::new(program);
    run_sequential_prepared(
        program,
        &prepared,
        input,
        policy,
        rng,
        max_steps,
        record_trace,
    )
}

/// [`run_sequential`] on a pre-planned program: rule bodies are planned
/// once and one incrementally maintained index follows the instance across
/// steps, so a chase step costs the body matching alone — no per-step
/// index rebuild.
///
/// # Errors
/// Same as [`run_sequential`].
pub fn run_sequential_prepared(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    input: &Instance,
    policy: &mut ChasePolicy,
    rng: &mut dyn Rng,
    max_steps: usize,
    record_trace: bool,
) -> Result<ChaseRun, DistError> {
    let mut instance = input.clone();
    let mut index = prepared.new_index(&instance);
    let mut steps = 0usize;
    let mut log_weight = 0.0;
    let mut trace = Vec::new();

    loop {
        let app = prepared.applicable_pairs(program, &instance, &index);
        if app.is_empty() {
            return Ok(ChaseRun {
                outcome: RunOutcome::Terminated,
                instance,
                steps,
                log_weight,
                trace,
            });
        }
        if steps >= max_steps {
            return Ok(ChaseRun {
                outcome: RunOutcome::BudgetExhausted,
                instance,
                steps,
                log_weight,
                trace,
            });
        }
        let AppPair { rule, valuation } = app[policy.select(&app)].clone();
        let fired = fire(program, &program.rules[rule], &valuation, rng)?;
        let Fact { rel, tuple } = fired.fact;
        if instance.insert(rel, tuple.clone()) {
            index.absorb(rel, &tuple);
        }
        log_weight += fired.log_density;
        if record_trace {
            trace.push(TraceStep {
                rule,
                valuation,
                sampled: fired.sampled,
                log_density: fired.log_density,
            });
        }
        steps += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use gdatalog_data::tuple;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    fn run(prog: &CompiledProgram, seed: u64, max_steps: usize) -> ChaseRun {
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        let mut rng = StdRng::seed_from_u64(seed);
        run_sequential(
            prog,
            &prog.initial_instance,
            &mut policy,
            &mut rng,
            max_steps,
            true,
        )
        .unwrap()
    }

    #[test]
    fn single_flip_terminates_in_two_steps() {
        let prog = compile("R(Flip<0.5>) :- true.");
        let run = run(&prog, 1, 100);
        assert_eq!(run.outcome, RunOutcome::Terminated);
        assert_eq!(run.steps, 2, "existential then delivery");
        let r = prog.catalog.require("R").unwrap();
        assert_eq!(run.instance.relation_len(r), 1);
        // The sampled value is 0 or 1 and log-density = ln(0.5).
        assert!((run.log_weight - 0.5f64.ln()).abs() < 1e-12);
        assert_eq!(run.trace.len(), 2);
        assert_eq!(run.trace[0].sampled.len(), 1);
    }

    #[test]
    fn deterministic_program_reaches_datalog_fixpoint() {
        let prog = compile(
            r#"
            E(1, 2). E(2, 3). E(3, 4).
            T(X, Y) :- E(X, Y).
            T(X, Z) :- T(X, Y), E(Y, Z).
        "#,
        );
        let run = run(&prog, 2, 1000);
        assert_eq!(run.outcome, RunOutcome::Terminated);
        let t = prog.catalog.require("T").unwrap();
        assert_eq!(run.instance.relation_len(t), 6);
        assert!(run.instance.contains(t, &tuple![1i64, 4i64]));
        assert_eq!(run.log_weight, 0.0);
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // The continuous chain is a.s. non-terminating (§6.3): every sample
        // is fresh, so the rule is applicable forever.
        let prog = compile(
            r#"
            C(0.0).
            C(Normal<V, 1.0>) :- C(V).
        "#,
        );
        let run = run(&prog, 3, 50);
        assert_eq!(run.outcome, RunOutcome::BudgetExhausted);
        assert_eq!(run.steps, 50);
    }

    #[test]
    fn fd_invariant_holds_along_runs() {
        // Lemma 3.10: every reachable instance satisfies the induced FDs.
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            City(metropolis, 0.2).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Trig(X, Flip<0.6>) :- Earthquake(X, 1).
        "#,
        );
        for seed in 0..20 {
            let run = run(&prog, seed, 1000);
            assert_eq!(run.outcome, RunOutcome::Terminated);
            for fd in &prog.fds {
                assert!(fd.check(&run.instance).is_ok(), "seed {seed}");
            }
        }
    }

    #[test]
    fn different_policies_still_terminate_with_same_output_schema_facts() {
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<1.0>) :- City(C, R).
            Alarm(C) :- Earthquake(C, 1).
        "#,
        );
        // Flip<1.0> always yields 1, so the final output is deterministic
        // regardless of policy.
        let mut outputs = Vec::new();
        for kind in [
            PolicyKind::Canonical,
            PolicyKind::Reverse,
            PolicyKind::RoundRobin,
            PolicyKind::Random { seed: 5 },
            PolicyKind::DeterministicFirst,
        ] {
            let existential: Vec<usize> = prog
                .rules
                .iter()
                .filter(|r| r.is_existential())
                .map(|r| r.id)
                .collect();
            let mut policy = ChasePolicy::new(kind, &existential);
            let mut rng = StdRng::seed_from_u64(7);
            let run = run_sequential(
                &prog,
                &prog.initial_instance,
                &mut policy,
                &mut rng,
                1000,
                false,
            )
            .unwrap();
            assert_eq!(run.outcome, RunOutcome::Terminated);
            outputs.push(prog.project_output(&run.instance));
        }
        for o in &outputs[1..] {
            assert_eq!(o, &outputs[0]);
        }
    }
}
