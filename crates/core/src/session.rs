//! The session/query surface: one compiled program serving many requests.
//!
//! A [`Session`] pairs a compiled [`Engine`] with a persistent,
//! incrementally extendable fact store (the extensional database), so a
//! program compiled once can answer many queries over evolving inputs.
//! Every evaluation goes through the builder-style [`Evaluation`] returned
//! by [`Session::eval`] (or [`Engine::eval`]): configure the run with
//! chained setters, then finish with a typed terminal —
//! [`worlds`](Evaluation::worlds), [`pdb`](Evaluation::pdb),
//! [`marginal`](Evaluation::marginal),
//! [`probability`](Evaluation::probability),
//! [`expectation`](Evaluation::expectation),
//! [`histogram`](Evaluation::histogram),
//! [`quantile`](Evaluation::quantile),
//! [`tail_probability`](Evaluation::tail_probability), and friends — or
//! answer **many** statistics from one backend pass with
//! [`answer`](Evaluation::answer) over a
//! [`QuerySet`] (every statistic terminal is one-query
//! sugar over that path).
//!
//! Queries are the point of the exercise: Fact 2.6 of the paper says
//! relational-algebra and aggregate queries are measurable maps on
//! (S)PDBs, so every query terminal is well-defined on the *distribution*
//! the program denotes — and is evaluated natively on whichever backend
//! the builder selects, exact world tables or streaming Monte-Carlo.

use std::borrow::Cow;
use std::sync::Arc;

use gdatalog_data::{Fact, Instance, RelId};
use gdatalog_dist::Registry;
use gdatalog_lang::{
    compile_observations, parse_facts, CompiledObserve, CompiledProgram, Program, SemanticsMode,
};
use gdatalog_pdb::{
    AggFun, ColumnHistogram, EmpiricalPdb, EmpiricalSink, Event, Moments, MultiplexSink,
    NormalizingSink, PossibleWorlds, Query, WeightStats, WorldSink, WorldTableSink,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::applicability::PreparedProgram;
use crate::backend::{
    Backend, EvalJob, EvalOptions, ExactParallelBackend, ExactSequentialBackend, McBackend,
    RunBudget,
};
use crate::engine::{Engine, EngineError};
use crate::mc::ChaseVariant;
use crate::mcmc::MhBackend;
use crate::policy::{ChasePolicy, PolicyKind};
use crate::queryset::{Answer, Answers, QuerySet};
use crate::sequential::{run_sequential, ChaseRun};

/// A compiled program plus a persistent extensional database: the serving
/// surface of the engine. Compile once, [insert facts](Session::insert_facts)
/// as they arrive, and answer any number of [`Evaluation`] requests.
///
/// ```
/// use gdatalog_core::Session;
/// use gdatalog_lang::SemanticsMode;
///
/// let mut session = Session::from_source(
///     "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
///     SemanticsMode::Grohe,
/// ).unwrap();
/// session.insert_facts_text("City(gotham).").unwrap();
/// let worlds = session.eval().exact().worlds().unwrap();
/// assert_eq!(worlds.len(), 2);
/// session.insert_facts_text("City(metropolis).").unwrap();
/// assert_eq!(session.eval().exact().worlds().unwrap().len(), 4);
/// ```
pub struct Session {
    engine: Engine,
    /// The program's initial facts unioned with everything inserted — the
    /// instance every evaluation starts from, maintained incrementally.
    input: Instance,
    /// The facts inserted on top of the program's own ground facts, in
    /// insertion order — the per-request delta that [`Session::reset`]
    /// removes in O(|delta|), independent of the base instance size.
    delta: Vec<Fact>,
}

impl Session {
    /// Compiles program text into a session, with the standard
    /// distribution family.
    ///
    /// # Errors
    /// Syntax/validation/translation errors.
    pub fn from_source(src: &str, mode: SemanticsMode) -> Result<Session, EngineError> {
        Ok(Session::new(Engine::from_source(src, mode)?))
    }

    /// Compiles program text against a custom distribution family Ψ.
    ///
    /// # Errors
    /// Syntax/validation/translation errors.
    pub fn from_source_with_registry(
        src: &str,
        mode: SemanticsMode,
        registry: Arc<Registry>,
    ) -> Result<Session, EngineError> {
        Ok(Session::new(Engine::from_source_with_registry(
            src, mode, registry,
        )?))
    }

    /// Compiles an already-parsed AST into a session.
    ///
    /// # Errors
    /// Validation/translation errors.
    pub fn from_ast(
        ast: Program,
        mode: SemanticsMode,
        registry: Arc<Registry>,
    ) -> Result<Session, EngineError> {
        Ok(Session::new(Engine::from_ast(ast, mode, registry)?))
    }

    /// Wraps an already-compiled engine.
    pub fn new(engine: Engine) -> Session {
        let input = engine.program().initial_instance.clone();
        Session {
            engine,
            input,
            delta: Vec::new(),
        }
    }

    /// The compiled engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The compiled program (catalog, rules, analyses).
    pub fn program(&self) -> &CompiledProgram {
        self.engine.program()
    }

    /// The instance every evaluation starts from: the program's own ground
    /// facts plus everything inserted into the session.
    pub fn facts(&self) -> &Instance {
        &self.input
    }

    /// Number of facts inserted beyond the program's own ground facts.
    pub fn inserted_facts(&self) -> usize {
        self.delta.len()
    }

    /// Extends the extensional database with `facts` (set semantics:
    /// duplicates are no-ops). The merge is incremental — no rebuild of the
    /// base instance per request.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_data::{tuple, Instance};
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let mut session = Session::from_source(
    ///     "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let city = session.program().catalog.require("City").unwrap();
    /// let mut batch = Instance::new();
    /// batch.insert(city, tuple!["gotham"]);
    /// session.insert_facts(&batch);
    /// assert_eq!(session.facts().len(), 1);
    /// ```
    pub fn insert_facts(&mut self, facts: &Instance) {
        for fact in facts.facts() {
            self.insert_fact(fact);
        }
    }

    /// Inserts one fact; returns whether it was new.
    pub fn insert_fact(&mut self, fact: Fact) -> bool {
        let fresh = self.input.insert_fact(fact.clone());
        if fresh {
            self.delta.push(fact);
        }
        fresh
    }

    /// Parses `text` as ground facts against the program's catalog and
    /// inserts them; returns the number of facts parsed.
    ///
    /// # Errors
    /// Parse errors, unknown relations, arity/type mismatches.
    pub fn insert_facts_text(&mut self, text: &str) -> Result<usize, EngineError> {
        let parsed = parse_facts(text, &self.program().catalog)?;
        let n = parsed.len();
        self.insert_facts(&parsed);
        Ok(n)
    }

    /// Starts a builder-style evaluation over the session's facts.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let session = Session::from_source(
    ///     "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// // Example 1.1: three worlds with probabilities 1/4, 1/4, 1/2.
    /// let worlds = session.eval().worlds().unwrap();
    /// assert_eq!(worlds.len(), 3);
    /// ```
    pub fn eval(&self) -> Evaluation<'_> {
        Evaluation::new(self.program(), Cow::Borrowed(&self.input))
            .shared_plans(Arc::clone(self.engine.prepared()))
    }

    /// Discards every inserted fact, returning the extensional database to
    /// the program's own ground facts — the checkout hook of a session
    /// pool: a pooled session is `reset` when it comes back, so the next
    /// request starts from a clean base with the compiled program (and its
    /// chase plans) still warm. Costs O(|inserted delta|): only the facts
    /// inserted since construction (or the last reset) are removed, so a
    /// large base EDB is never re-cloned per request.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let mut session = Session::from_source(
    ///     "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// session.insert_facts_text("City(gotham).").unwrap();
    /// assert_eq!(session.facts().len(), 1);
    /// session.reset();
    /// assert_eq!(session.facts().len(), 0);
    /// assert_eq!(session.inserted_facts(), 0);
    /// ```
    pub fn reset(&mut self) {
        for fact in self.delta.drain(..) {
            self.input.remove(fact.rel, &fact.tuple);
        }
    }
}

/// The evidence summary of a (conditioned) evaluation: normalizing
/// constant and importance-sampling diagnostics. See
/// [`Evaluation::evidence`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvidenceSummary {
    /// Total observed weight: `P(evidence ∧ termination)` on exact
    /// backends, the self-normalizing constant `1/N·ΣLᵢ` on
    /// likelihood-weighted Monte-Carlo streams. Underflows to 0 once
    /// `log_mass` drops below ≈ −745; the posterior statistics remain
    /// correct regardless (they are computed in log space).
    pub mass: f64,
    /// `ln mass`, computed without leaving log space — finite (and
    /// informative) even where `mass` underflows linear `f64`. `-inf`
    /// only when no weighted world was observed at all.
    pub log_mass: f64,
    /// Effective sample size `(Σw)²/Σw²`: equals the surviving world/run
    /// count when all weights agree, collapses toward 1 when few runs
    /// dominate the posterior. The [`Evaluation::sample_until`] driver
    /// grows the run count until this reaches its target.
    pub ess: f64,
    /// Number of (nonzero-weight) world observations.
    pub worlds: usize,
    /// Number of backend draws consumed: the Monte-Carlo run count
    /// (including dropped and over-budget runs), the kept-sample count on
    /// the MH backend, and the enumerated world count on exact backends.
    pub runs: usize,
    /// Metropolis-Hastings proposal acceptance rate in `[0, 1]` —
    /// `Some` only on [`MhBackend`] passes.
    pub accept_rate: Option<f64>,
}

/// The stopping rule of [`Evaluation::sample_until`]: grow the
/// likelihood-weighted run count in deterministic batches until the
/// effective sample size reaches `target` (or the `max_runs`/deadline cap
/// hits). Batches double from `initial_batch`, and every run's seed
/// derives from its global run index, so the sampled stream is a prefix
/// of the fixed-run stream with the same seed — the adaptive answer is
/// reproducible and grows monotonically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EssTarget {
    /// Stop once the achieved effective sample size reaches this.
    pub target: f64,
    /// Hard cap on the total run count (the target may not be reachable —
    /// sharp evidence can pin ESS near 1 regardless of effort).
    pub max_runs: usize,
    /// Size of the first batch; subsequent batches double.
    pub initial_batch: usize,
}

impl EssTarget {
    /// A target with the default caps: at most `1 << 20` runs, first
    /// batch 512.
    pub fn new(target: f64) -> EssTarget {
        EssTarget {
            target,
            max_runs: 1 << 20,
            initial_batch: 512,
        }
    }

    /// Replaces the run cap (chainable).
    pub fn max_runs(mut self, cap: usize) -> EssTarget {
        self.max_runs = cap;
        self
    }

    /// Replaces the first-batch size (chainable).
    pub fn initial_batch(mut self, runs: usize) -> EssTarget {
        self.initial_batch = runs;
        self
    }

    /// The validated [`RunBudget`] of this target for a given executor
    /// lane-batch size ([`EvalOptions::batch`]) — the shared run-count
    /// plumbing behind the adaptive driver.
    pub fn budget(&self, batch: usize) -> RunBudget {
        RunBudget::adaptive(self.max_runs, self.initial_batch, batch)
    }
}

/// Which evaluation strategy the builder selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BackendChoice {
    /// Pick per terminal: exact for discrete programs, Monte-Carlo when the
    /// program samples a continuous distribution.
    Auto,
    /// Exact sequential chase-tree enumeration.
    ExactSequential,
    /// Exact parallel chase enumeration.
    ExactParallel,
    /// Monte-Carlo path sampling.
    Mc,
    /// Single-site Metropolis-Hastings over chase traces.
    Mh,
}

/// A configured evaluation request: chain setters, then call a typed
/// terminal. Created by [`Session::eval`], [`Engine::eval`], or
/// [`Engine::eval_on`].
///
/// Unless [`exact`](Evaluation::exact),
/// [`exact_parallel`](Evaluation::exact_parallel), or
/// [`sample`](Evaluation::sample) is called, the backend is picked
/// automatically: exact enumeration for discrete programs, Monte-Carlo
/// when the program uses a continuous distribution.
pub struct Evaluation<'a> {
    program: &'a CompiledProgram,
    input: Cow<'a, Instance>,
    options: EvalOptions,
    choice: BackendChoice,
    /// Shared chase plans (from the owning [`Engine`]/[`Session`]); when
    /// present, backends skip per-request planning.
    prepared: Option<Arc<PreparedProgram>>,
    /// Per-request evidence text (compiled lazily at the terminal, on top
    /// of the program's own `@observe` clauses).
    given: Vec<String>,
    /// When set, statistic terminals grow the Monte-Carlo run count in
    /// batches until the effective sample size reaches the target (see
    /// [`Evaluation::sample_until`]).
    ess_target: Option<EssTarget>,
}

impl<'a> Evaluation<'a> {
    pub(crate) fn new(program: &'a CompiledProgram, input: Cow<'a, Instance>) -> Evaluation<'a> {
        Evaluation {
            program,
            input,
            options: EvalOptions::default(),
            choice: BackendChoice::Auto,
            prepared: None,
            given: Vec::new(),
            ess_target: None,
        }
    }

    /// Attaches pre-built chase plans (must belong to this program), so
    /// backends reuse them instead of planning per request.
    pub(crate) fn shared_plans(mut self, prepared: Arc<PreparedProgram>) -> Evaluation<'a> {
        self.prepared = Some(prepared);
        self
    }

    // -- backend selection -------------------------------------------------

    /// Forces exact sequential chase-tree enumeration (Def. 4.2).
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let worlds = s.eval().exact().worlds().unwrap();
    /// assert_eq!(worlds.len(), 2);
    /// ```
    pub fn exact(mut self) -> Evaluation<'a> {
        self.choice = BackendChoice::ExactSequential;
        self
    }

    /// Forces exact **parallel** chase enumeration (Def. 5.2); the result
    /// equals [`exact`](Evaluation::exact) by Theorem 6.1.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let seq = s.eval().exact().worlds().unwrap();
    /// let par = s.eval().exact_parallel().worlds().unwrap();
    /// assert!(seq.total_variation(&par) < 1e-12);
    /// ```
    pub fn exact_parallel(mut self) -> Evaluation<'a> {
        self.choice = BackendChoice::ExactParallel;
        self
    }

    /// Forces Monte-Carlo path sampling with `runs` independent runs
    /// (works for continuous programs; statistics stream run-by-run).
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("H(Normal<0.0, 1.0>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let pdb = s.eval().sample(500).pdb().unwrap();
    /// assert_eq!(pdb.runs(), 500);
    /// ```
    pub fn sample(mut self, runs: usize) -> Evaluation<'a> {
        self.choice = BackendChoice::Mc;
        self.options.runs = runs;
        self
    }

    /// **Adaptive** Monte-Carlo: grows the run count in deterministic
    /// doubling batches until the effective sample size of the (possibly
    /// likelihood-weighted) stream reaches `target`, or its run cap or a
    /// configured [`deadline`](Evaluation::deadline) hits. The achieved
    /// ESS and consumed run count are reported in the
    /// [`EvidenceSummary`]. Honored by [`answer`](Evaluation::answer) and
    /// every statistic terminal; `worlds()`, `pdb()`, and the raw
    /// `collect_*` escape hatches use the fixed run count.
    ///
    /// ```
    /// use gdatalog_core::{EssTarget, Session};
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. S(Flip<0.8>) :- R(1).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let answers = s.eval()
    ///     .sample_until(EssTarget::new(200.0))
    ///     .seed(9)
    ///     .given("S(1).")
    ///     .answer(&gdatalog_core::QuerySet::new())
    ///     .unwrap();
    /// let ev = answers.evidence();
    /// assert!(ev.ess >= 200.0);
    /// assert!(ev.runs >= ev.ess as usize);
    /// ```
    pub fn sample_until(mut self, target: EssTarget) -> Evaluation<'a> {
        self.choice = BackendChoice::Mc;
        self.ess_target = Some(target);
        self
    }

    /// Forces the single-site **Metropolis-Hastings** backend with
    /// `samples` kept states (see [`MhBackend`]):
    /// posterior inference that stays effective where likelihood
    /// weighting collapses (sharp or many-observation evidence). Burn-in
    /// and thinning default to [`EvalOptions`] values; override with
    /// [`burn_in`](Evaluation::burn_in) / [`thin`](Evaluation::thin).
    /// The MH stream does **not** estimate the evidence mass — the
    /// reported `mass` is 1.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_data::{tuple, Fact};
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. S(Flip<0.8>) :- R(1).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let r = s.program().catalog.require("R").unwrap();
    /// let p = s.eval().mh(4000).seed(3).given("S(1).")
    ///     .marginal(&Fact::new(r, tuple![1i64])).unwrap();
    /// assert!((p - 1.0).abs() < 1e-12, "only R(1) worlds derive S(1)");
    /// ```
    pub fn mh(mut self, samples: usize) -> Evaluation<'a> {
        self.choice = BackendChoice::Mh;
        self.options.runs = samples;
        self
    }

    /// Sets the number of Markov-chain iterations discarded before the
    /// first kept sample (MH backend only).
    pub fn burn_in(mut self, steps: usize) -> Evaluation<'a> {
        self.options.burn_in = steps;
        self
    }

    /// Sets the thinning interval: keep every `every`-th post-burn-in
    /// state (MH backend only; 1 keeps every state).
    pub fn thin(mut self, every: usize) -> Evaluation<'a> {
        self.options.thin = every;
        self
    }

    // -- configuration -----------------------------------------------------

    /// Sets the number of Monte-Carlo worker threads. The set of sampled
    /// worlds is identical regardless of the thread count (each run's seed
    /// derives from its run index; partial results merge in run order);
    /// streamed f64 statistics can differ across thread counts only by
    /// floating-point re-association (≪ 1e-12).
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let single = s.eval().sample(2000).pdb().unwrap();
    /// let multi = s.eval().sample(2000).threads(4).pdb().unwrap();
    /// assert_eq!(single.samples(), multi.samples());
    /// ```
    pub fn threads(mut self, threads: usize) -> Evaluation<'a> {
        self.options.threads = threads;
        self
    }

    /// Sets the Monte-Carlo lane-batch size: how many runs the batched
    /// executor drives in lockstep, sharing the deterministic chase
    /// prefix and the per-step kernel work (see [`EvalOptions::batch`]).
    /// Results are **bit-identical** at any batch size; `1` disables
    /// batching. This is a throughput knob, not a semantics knob.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let scalar = s.eval().sample(2000).batch(1).pdb().unwrap();
    /// let batched = s.eval().sample(2000).batch(256).pdb().unwrap();
    /// assert_eq!(scalar.samples(), batched.samples());
    /// ```
    pub fn batch(mut self, batch: usize) -> Evaluation<'a> {
        self.options.batch = batch.max(1);
        self
    }

    /// Sets the Monte-Carlo master seed (run `i` uses a deterministic
    /// derivation of it).
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let a = s.eval().sample(100).seed(7).pdb().unwrap();
    /// let b = s.eval().sample(100).seed(7).pdb().unwrap();
    /// assert_eq!(a.samples(), b.samples());
    /// ```
    pub fn seed(mut self, seed: u64) -> Evaluation<'a> {
        self.options.seed = seed;
        self
    }

    /// Sets the chase policy (the measurable selection of §3.3) for
    /// sequential evaluation, exact or sampled. By Theorem 6.1 the denoted
    /// SPDB does not depend on the choice.
    ///
    /// ```
    /// use gdatalog_core::{PolicyKind, Session};
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let canonical = s.eval().worlds().unwrap();
    /// let reversed = s.eval().policy(PolicyKind::Reverse).worlds().unwrap();
    /// assert!(canonical.total_variation(&reversed) < 1e-12);
    /// ```
    pub fn policy(mut self, policy: PolicyKind) -> Evaluation<'a> {
        self.options.policy = policy;
        if let ChaseVariant::Sequential(_) = self.options.variant {
            self.options.variant = ChaseVariant::Sequential(policy);
        }
        self
    }

    /// Sets the chase budget: maximum depth for exact enumeration, maximum
    /// steps per Monte-Carlo run. Mass beyond the budget is charged to the
    /// non-termination deficit (the paper's `err` event, §4.2).
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source(
    ///     "G(0). G(Geometric<0.5 | X>) :- G(X).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let worlds = s.eval().exact().max_depth(6).worlds().unwrap();
    /// assert!(worlds.deficit().nontermination > 0.0);
    /// ```
    pub fn max_depth(mut self, depth: usize) -> Evaluation<'a> {
        self.options.max_depth = depth;
        self
    }

    /// Sets the tail mass at which countably-infinite discrete supports are
    /// truncated during exact enumeration.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("N(Geometric<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let worlds = s.eval().exact().support_tol(1e-4).worlds().unwrap();
    /// assert!(worlds.deficit().truncation <= 1e-4 + 1e-9);
    /// ```
    pub fn support_tol(mut self, tol: f64) -> Evaluation<'a> {
        self.options.support_tol = tol;
        self
    }

    /// Prunes exact-enumeration paths whose probability falls below the
    /// threshold into the non-termination deficit (0 disables pruning).
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.001>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let worlds = s.eval().exact().min_path_prob(0.01).worlds().unwrap();
    /// assert!(worlds.deficit().nontermination > 0.0, "rare branch pruned");
    /// ```
    pub fn min_path_prob(mut self, p: f64) -> Evaluation<'a> {
        self.options.min_path_prob = p;
        self
    }

    /// Sets the chase procedure driving each Monte-Carlo run (sequential
    /// under a policy, parallel, or saturating).
    ///
    /// ```
    /// use gdatalog_core::{ChaseVariant, Session};
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let pdb = s.eval().sample(500).variant(ChaseVariant::Parallel).pdb().unwrap();
    /// assert_eq!(pdb.runs(), 500);
    /// ```
    pub fn variant(mut self, variant: ChaseVariant) -> Evaluation<'a> {
        self.options.variant = variant;
        self
    }

    /// Conditions the evaluation on **evidence**: the same statements as
    /// `@observe` program clauses, with the prefix optional — hard ground
    /// facts (`"Alarm(h1)."`) and soft likelihood statements
    /// (`"Normal<M, 1.0> == 2.5 :- Mu(M)."`). May be chained; each call
    /// appends. Evidence composes with the program's own `@observe`
    /// clauses.
    ///
    /// Under conditioning every statistic terminal returns the
    /// **posterior**: exact backends filter and renormalize the enumerated
    /// world table, the Monte-Carlo backend switches to likelihood-weighted
    /// (self-normalized importance) sampling using the distributions'
    /// log-densities. Use [`evidence`](Evaluation::evidence) for the
    /// normalizing constant and an effective-sample-size diagnostic.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_data::{tuple, Fact};
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. S(Flip<0.8>) :- R(1).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let r = s.program().catalog.require("R").unwrap();
    /// // Posterior P(R(1) | S(1)) = 1: only R(1) worlds can derive S(1).
    /// let p = s.eval().given("S(1).").marginal(&Fact::new(r, tuple![1i64])).unwrap();
    /// assert!((p - 1.0).abs() < 1e-12);
    /// ```
    pub fn given(mut self, evidence: impl Into<String>) -> Evaluation<'a> {
        self.given.push(evidence.into());
        self
    }

    /// Keeps auxiliary experiment relations in the results instead of
    /// projecting to the output schema (Remark 4.9).
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let raw = s.eval().keep_aux(true).worlds().unwrap();
    /// let projected = s.eval().worlds().unwrap();
    /// // Aux experiment relations make the raw worlds strictly larger.
    /// let raw_facts: usize = raw.iter().map(|(d, _)| d.len()).sum();
    /// let out_facts: usize = projected.iter().map(|(d, _)| d.len()).sum();
    /// assert!(raw_facts > out_facts);
    /// ```
    pub fn keep_aux(mut self, keep: bool) -> Evaluation<'a> {
        self.options.keep_aux = keep;
        self
    }

    /// Sets a cooperative per-request deadline: the chase loops check it
    /// between bounded units of work (enumeration nodes, Monte-Carlo runs)
    /// and abort with [`EngineError::DeadlineExceeded`](crate::EngineError)
    /// once it has passed. Serving layers use this to bound tail latency.
    ///
    /// ```
    /// use gdatalog_core::{EngineError, Session};
    /// use gdatalog_lang::SemanticsMode;
    /// use std::time::Instant;
    ///
    /// let s = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let err = s.eval().deadline(Instant::now()).worlds().unwrap_err();
    /// assert!(matches!(err, EngineError::DeadlineExceeded));
    /// ```
    pub fn deadline(mut self, deadline: std::time::Instant) -> Evaluation<'a> {
        self.options.deadline = Some(deadline);
        self
    }

    /// Replaces the whole options record (bulk configuration).
    pub fn options(mut self, options: EvalOptions) -> Evaluation<'a> {
        self.options = options;
        self
    }

    /// The current options record.
    pub fn current_options(&self) -> &EvalOptions {
        &self.options
    }

    // -- backend resolution ------------------------------------------------

    fn auto_backend(&self) -> BackendChoice {
        if self.program.all_discrete() {
            BackendChoice::ExactSequential
        } else {
            BackendChoice::Mc
        }
    }

    fn backend_for(&self, choice: BackendChoice) -> Box<dyn Backend> {
        match choice {
            BackendChoice::ExactSequential | BackendChoice::Auto => {
                Box::new(ExactSequentialBackend)
            }
            BackendChoice::ExactParallel => Box::new(ExactParallelBackend),
            BackendChoice::Mc => Box::new(McBackend),
            BackendChoice::Mh => Box::new(MhBackend::default()),
        }
    }

    /// Whether any evidence applies — program-level `@observe` clauses or
    /// per-request [`given`](Evaluation::given) statements. Decided on the
    /// **compiled** observation set, so evidence text that compiles to
    /// nothing (empty or comment-only `given("")`) does not flip the
    /// evaluation into conditioned mode.
    fn is_conditioned(&self) -> Result<bool, EngineError> {
        if self.given.is_empty() {
            return Ok(self.program.has_observes());
        }
        Ok(!self.observes()?.is_empty())
    }

    /// The full compiled observation set: the program's `@observe` clauses
    /// plus the per-request [`given`](Evaluation::given) evidence.
    fn observes(&self) -> Result<Cow<'a, [CompiledObserve]>, EngineError> {
        if self.given.is_empty() {
            return Ok(Cow::Borrowed(&self.program.observes));
        }
        let mut all = self.program.observes.clone();
        for text in &self.given {
            all.extend(compile_observations(self.program, text)?);
        }
        Ok(Cow::Owned(all))
    }

    /// The job record handed to backends: program, shared plans (when the
    /// evaluation came from an [`Engine`]/[`Session`]), input, options,
    /// evidence.
    fn job_with<'o>(&'o self, observes: &'o [CompiledObserve]) -> EvalJob<'o> {
        EvalJob {
            program: self.program,
            prepared: self.prepared.as_deref(),
            input: &self.input,
            options: &self.options,
            observes,
        }
    }

    fn run_with(&self, choice: BackendChoice, sink: &mut dyn WorldSink) -> Result<(), EngineError> {
        let observes = self.observes()?;
        self.backend_for(choice)
            .run(&self.job_with(&observes), sink)
    }

    /// Runs under a **log-space** [`NormalizingSink`], returning the inner
    /// sink and the observed weight statistics — the conditioned-terminal
    /// work-horse. Conditioned backends emit log-weights
    /// ([`WorldSink::observe_log`]), so the accumulated statistics stay
    /// finite even when every weight underflows linear `f64`; divide the
    /// inner statistic by [`WeightStats::normalizer`] (same scale).
    fn run_normalized<S: WorldSink + 'static>(
        &self,
        choice: BackendChoice,
        sink: S,
    ) -> Result<(S, WeightStats), EngineError> {
        let mut wrapper = NormalizingSink::log_space(sink);
        self.run_with(choice, &mut wrapper)?;
        let (inner, stats) = wrapper.finish();
        if stats.normalizer() <= 0.0 {
            return Err(EngineError::ZeroEvidence);
        }
        Ok((inner, stats))
    }

    fn resolved_choice(&self) -> BackendChoice {
        match self.choice {
            BackendChoice::Auto => self.auto_backend(),
            c => c,
        }
    }

    // -- terminals ---------------------------------------------------------

    /// Drives the selected backend, folding observations into a custom
    /// [`WorldSink`] — the escape hatch behind every other terminal, and
    /// the entry point for user-defined streaming statistics. Also accepts
    /// a custom [`Backend`] via [`Evaluation::collect_with`].
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    /// use gdatalog_pdb::WorldTableSink;
    ///
    /// let s = Session::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let mut sink = WorldTableSink::new();
    /// s.eval().collect_into(&mut sink).unwrap();
    /// assert_eq!(sink.finish().len(), 2);
    /// ```
    ///
    /// # Errors
    /// Backend evaluation errors.
    pub fn collect_into(&self, sink: &mut dyn WorldSink) -> Result<(), EngineError> {
        self.run_with(self.resolved_choice(), sink)
    }

    /// Like [`Evaluation::collect_into`], with a caller-supplied backend —
    /// the pluggable-backend entry point.
    ///
    /// # Errors
    /// Whatever the backend reports.
    pub fn collect_with(
        &self,
        backend: &dyn Backend,
        sink: &mut dyn WorldSink,
    ) -> Result<(), EngineError> {
        let observes = self.observes()?;
        backend.run(&self.job_with(&observes), sink)
    }

    /// Answers **every** query of a [`QuerySet`] in one backend pass: the
    /// set is validated once against the program schema, one sink per
    /// query is built, and the selected backend's world stream is fanned
    /// out to all of them through a
    /// [`MultiplexSink`] wrapped in a single shared
    /// [`NormalizingSink`] — so K statistics cost one
    /// chase/enumeration/Monte-Carlo pass, and under
    /// [`given`](Evaluation::given) conditioning the normalizing constant
    /// and effective sample size are computed once and shared by every
    /// answer. Each single-query terminal is sugar over this method, so
    /// the bundled answers are **bit-identical** to the K individual
    /// terminal calls.
    ///
    /// ```
    /// use gdatalog_core::{Answer, QuerySet, Session};
    /// use gdatalog_data::{tuple, Fact};
    /// use gdatalog_lang::SemanticsMode;
    /// use gdatalog_pdb::{AggFun, Query};
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let r = s.program().catalog.require("R").unwrap();
    /// let queries = QuerySet::new()
    ///     .marginal(&Fact::new(r, tuple![1i64]))
    ///     .expectation(&Query::Rel(r), AggFun::Count)
    ///     .histogram(r, 0, 0.0, 2.0, 2)
    ///     .tail(r, 0, 1.0);
    /// let answers = s.eval().answer(&queries).unwrap();   // one pass
    /// assert_eq!(answers.len(), 4);
    /// assert_eq!(answers[0], Answer::Marginal(0.75));
    /// assert_eq!(answers[3], Answer::Tail(0.75));
    /// ```
    ///
    /// An empty set is the diagnostics-only request: it still runs the
    /// pass and reports the [`EvidenceSummary`] through
    /// [`Answers::evidence`].
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] if a query fails schema
    /// validation; backend evaluation errors;
    /// [`EngineError::ZeroEvidence`] when conditioning rejects all mass.
    pub fn answer(&self, queries: &QuerySet) -> Result<Answers, EngineError> {
        self.answer_multiplexed(None, queries)
    }

    /// Like [`Evaluation::answer`], with a caller-supplied backend — the
    /// pluggable-backend entry point for multi-query execution (and the
    /// hook the test suite uses to *count* backend passes).
    ///
    /// # Errors
    /// As [`Evaluation::answer`], plus whatever the backend reports.
    pub fn answer_with(
        &self,
        backend: &dyn Backend,
        queries: &QuerySet,
    ) -> Result<Answers, EngineError> {
        self.answer_multiplexed(Some(backend), queries)
    }

    /// The single-pass multi-query work-horse behind
    /// [`answer`](Evaluation::answer) and every statistic terminal.
    fn answer_multiplexed(
        &self,
        backend: Option<&dyn Backend>,
        queries: &QuerySet,
    ) -> Result<Answers, EngineError> {
        queries.validate(self.program)?;
        let conditioned = self.is_conditioned()?;
        if backend.is_none() {
            if let Some(target) = self.ess_target {
                return self.answer_adaptive(queries, conditioned, target);
            }
        }
        // Conditioned backends emit log-space weights (finite where the
        // linear likelihood product underflows), so the shared normalizer
        // runs in log mode; unconditioned streams keep the historical
        // linear accumulation bit-identically.
        let mux = MultiplexSink::new(queries.sinks());
        let mut wrapper = if conditioned {
            NormalizingSink::log_space(mux)
        } else {
            NormalizingSink::new(mux)
        };
        let choice = self.resolved_choice();
        let mut accept_rate = None;
        match backend {
            None if choice == BackendChoice::Mh => {
                // Constructed locally (not via `backend_for`) so the
                // acceptance counters can be read back after the pass.
                let mh = MhBackend::default();
                let observes = self.observes()?;
                mh.run(&self.job_with(&observes), &mut wrapper)?;
                accept_rate = mh.acceptance_rate();
            }
            None => self.run_with(choice, &mut wrapper)?,
            Some(backend) => {
                let observes = self.observes()?;
                backend.run(&self.job_with(&observes), &mut wrapper)?;
            }
        }
        let (mux, stats) = wrapper.finish();
        if conditioned && stats.normalizer() <= 0.0 {
            return Err(EngineError::ZeroEvidence);
        }
        // The inner sinks hold weights at the normalizer's scale, so the
        // same-scale `normalizer()` (not the absolute `total()`) is the
        // correct divisor.
        let norm = conditioned.then(|| stats.normalizer());
        let answers = queries.finish(mux.into_sinks(), norm);
        let runs = match (backend, choice) {
            (None, BackendChoice::Mc | BackendChoice::Mh) => self.options.runs,
            _ => stats.worlds,
        };
        Ok(Answers::new(
            answers,
            EvidenceSummary {
                mass: stats.total(),
                log_mass: stats.log_total(),
                ess: stats.ess(),
                worlds: stats.worlds,
                runs,
                accept_rate,
            },
            conditioned,
        ))
    }

    /// The ESS-targeted driver behind [`Evaluation::sample_until`]: feeds
    /// doubling batches of **raw** per-run Monte-Carlo observations (no
    /// `1/runs` share) into one persistent log-space normalizer, polling
    /// the achieved effective sample size between batches. Every run's
    /// seed derives from its global run index, so the adaptive stream is
    /// a prefix of the fixed-run stream under the same seed — results are
    /// reproducible and independent of the batch schedule.
    fn answer_adaptive(
        &self,
        queries: &QuerySet,
        conditioned: bool,
        target: EssTarget,
    ) -> Result<Answers, EngineError> {
        let observes = self.observes()?;
        let job = self.job_with(&observes);
        let mut wrapper = NormalizingSink::log_space(MultiplexSink::new(queries.sinks()));
        // One validated budget carries every run-count invariant; the
        // schedule grows in whole executor lane batches so a stopping-rule
        // poll never lands mid-batch (the cap may still cut the last one).
        let budget = target.budget(self.options.batch);
        let max_runs = budget.max_runs;
        let mut batch = budget.initial_batch;
        let mut done = 0usize;
        while done < max_runs {
            let end = budget.round_to_batches(done.saturating_add(batch));
            match crate::backend::mc_stream(&job, &mut wrapper, done..end, true) {
                Ok(()) => {}
                // A deadline mid-batch is terminal: keep what the stream
                // folded if anything was observed — the posterior is
                // self-normalized, so a partial batch is still a valid
                // (shorter) importance sample. The unrun tail of the
                // interrupted batch is counted as attempted, biasing only
                // the evidence estimate, by at most one batch.
                Err(EngineError::DeadlineExceeded) if wrapper.stats().worlds > 0 => {
                    done = end;
                    break;
                }
                Err(e) => return Err(e),
            }
            done = end;
            if wrapper.stats().ess() >= target.target {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        let (mux, stats) = wrapper.finish();
        if conditioned && stats.normalizer() <= 0.0 {
            return Err(EngineError::ZeroEvidence);
        }
        // Raw emission carries no 1/N share, so the run count is part of
        // the normalizer: conditioned streams self-normalize (the count
        // cancels), unconditioned ones divide by it explicitly.
        let norm = if conditioned {
            stats.normalizer()
        } else {
            done as f64
        };
        let answers = queries.finish(mux.into_sinks(), Some(norm));
        Ok(Answers::new(
            answers,
            EvidenceSummary {
                mass: stats.total() / done as f64,
                log_mass: stats.log_total() - (done as f64).ln(),
                ess: stats.ess(),
                worlds: stats.worlds,
                runs: done,
                accept_rate: None,
            },
            conditioned,
        ))
    }

    /// Unwraps the single answer of a one-query sugar terminal.
    fn answer_one(&self, queries: QuerySet) -> Result<Answer, EngineError> {
        debug_assert_eq!(queries.len(), 1);
        self.answer(&queries)
            .map(|answers| answers.into_iter().next().expect("one query, one answer"))
    }

    /// The full world table. Under an exact backend (the default, and the
    /// automatic choice for discrete programs) this is the exact SPDB; under
    /// an explicit [`sample`](Evaluation::sample) it is the empirical
    /// distribution over canonical instances.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let worlds = s.eval().worlds().unwrap();
    /// assert_eq!(worlds.len(), 3);
    /// assert!(worlds.mass_is_consistent(1e-12));
    /// ```
    ///
    /// Under conditioning (program `@observe` clauses or
    /// [`given`](Evaluation::given)) the returned table is the
    /// **renormalized posterior**: worlds rejected by the evidence are
    /// gone, the remaining probabilities sum to 1, and the deficit is empty
    /// (the conditional is taken given termination).
    ///
    /// # Errors
    /// [`EngineError::NotDiscrete`] when exact enumeration meets a
    /// continuous program — use [`sample`](Evaluation::sample);
    /// [`EngineError::ZeroEvidence`] when conditioning rejects all mass.
    pub fn worlds(&self) -> Result<PossibleWorlds, EngineError> {
        let choice = match self.choice {
            BackendChoice::Auto => BackendChoice::ExactSequential,
            c => c,
        };
        if !self.is_conditioned()? {
            let mut sink = WorldTableSink::new();
            self.run_with(choice, &mut sink)?;
            return Ok(sink.finish());
        }
        let (sink, stats) = self.run_normalized(choice, WorldTableSink::new())?;
        // The table's weights share the normalizer's log-space offset, so
        // the same-scale `normalizer()` renormalizes them exactly.
        let mut posterior = PossibleWorlds::new();
        for (world, p) in sink.finish().into_worlds() {
            posterior.add(world, p / stats.normalizer());
        }
        Ok(posterior)
    }

    /// The empirical PDB of a Monte-Carlo evaluation: every sampled world,
    /// materialized. Memory is O(runs) — prefer the streaming statistic
    /// terminals for large run counts.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.3>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let pdb = s.eval().sample(1000).seed(42).pdb().unwrap();
    /// assert_eq!(pdb.runs(), 1000);
    /// assert_eq!(pdb.errors(), 0);
    /// ```
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] if an exact backend was forced.
    pub fn pdb(&self) -> Result<EmpiricalPdb, EngineError> {
        match self.choice {
            BackendChoice::Auto | BackendChoice::Mc => {}
            _ => {
                return Err(EngineError::InvalidRequest(
                    "pdb() materializes Monte-Carlo samples; use .sample(runs), \
                     or .worlds() for exact backends"
                        .to_string(),
                ))
            }
        }
        if self.is_conditioned()? {
            // An EmpiricalPdb is an unweighted sample multiset — it cannot
            // carry importance weights, so it would silently report the
            // prior instead of the posterior.
            return Err(EngineError::InvalidRequest(
                "pdb() is unweighted and cannot represent a conditioned \
                 (likelihood-weighted) sample; use worlds() or a statistic \
                 terminal"
                    .to_string(),
            ));
        }
        let mut sink = EmpiricalSink::new();
        self.run_with(BackendChoice::Mc, &mut sink)?;
        Ok(sink.finish())
    }

    /// The marginal probability `P(f ∈ D)` of one fact, streamed in O(1)
    /// memory on the Monte-Carlo path.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_data::{tuple, Fact};
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let r = s.program().catalog.require("R").unwrap();
    /// let p = s.eval().marginal(&Fact::new(r, tuple![1i64])).unwrap();
    /// assert!((p - 0.25).abs() < 1e-12);
    /// ```
    ///
    /// Under conditioning this is the **posterior** marginal
    /// `P(f ∈ D | evidence)` (self-normalized).
    ///
    /// # Errors
    /// Backend evaluation errors; [`EngineError::ZeroEvidence`] when
    /// conditioning rejects all mass.
    pub fn marginal(&self, fact: &Fact) -> Result<f64, EngineError> {
        match self.answer_one(QuerySet::new().marginal(fact))? {
            Answer::Marginal(p) => Ok(p),
            _ => unreachable!("marginal query answers with Answer::Marginal"),
        }
    }

    /// The probability of a measurable [`Event`] (§2.3 of the paper);
    /// deficit mass counts as not satisfying the event.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_data::{tuple, Fact};
    /// use gdatalog_lang::SemanticsMode;
    /// use gdatalog_pdb::Event;
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let r = s.program().catalog.require("R").unwrap();
    /// let both = Event::contains_fact(&Fact::new(r, tuple![0i64]))
    ///     .and(Event::contains_fact(&Fact::new(r, tuple![1i64])));
    /// let p = s.eval().probability(&both).unwrap();
    /// assert!((p - 0.5).abs() < 1e-12);
    /// ```
    ///
    /// Under conditioning this is the **posterior** event probability
    /// `P(event | evidence)` (self-normalized).
    ///
    /// # Errors
    /// Backend evaluation errors; [`EngineError::ZeroEvidence`] when
    /// conditioning rejects all mass.
    pub fn probability(&self, event: &Event) -> Result<f64, EngineError> {
        match self.answer_one(QuerySet::new().probability(event))? {
            Answer::Probability(p) => Ok(p),
            _ => unreachable!("probability query answers with Answer::Probability"),
        }
    }

    /// Mean and variance of an aggregate of a [`Query`]'s answers: per
    /// world, `agg` is applied to the last column of the answer tuples
    /// (count ignores the column); empty answers contribute 0. Moments are
    /// conditional on termination. Returns `None` if no world mass was
    /// observed.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    /// use gdatalog_pdb::{AggFun, Query};
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let r = s.program().catalog.require("R").unwrap();
    /// // E[|R|] = 1/4·1 + 1/4·1 + 1/2·2 = 1.5.
    /// let m = s.eval().expectation(&Query::Rel(r), AggFun::Count).unwrap().unwrap();
    /// assert!((m.mean - 1.5).abs() < 1e-12);
    /// ```
    ///
    /// Under conditioning the moments are **posterior** moments: the sink
    /// normalizes by the observed (likelihood-weighted) mass, so no extra
    /// correction applies; `Moments::mass` then reports the unnormalized
    /// evidence mass (see [`evidence`](Evaluation::evidence)).
    ///
    /// # Errors
    /// Backend evaluation errors.
    pub fn expectation(&self, query: &Query, agg: AggFun) -> Result<Option<Moments>, EngineError> {
        match self.answer_one(QuerySet::new().expectation(query, agg))? {
            Answer::Expectation(m) => Ok(m),
            _ => unreachable!("expectation query answers with Answer::Expectation"),
        }
    }

    /// A probability-weighted histogram of the values at column `col` of
    /// relation `rel`, with `bins` equal-width bins spanning `[lo, hi)` —
    /// streamed in O(bins) memory on the Monte-Carlo path.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("H(Normal<0.0, 1.0>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let h = s.program().catalog.require("H").unwrap();
    /// let hist = s.eval().sample(2000).histogram(h, 0, -4.0, 4.0, 16).unwrap();
    /// assert!((hist.total() - 1.0).abs() < 0.05, "one sample per run");
    /// ```
    ///
    /// Under conditioning the histogram is normalized by the evidence mass
    /// (bin totals are posterior expected counts, `mass` becomes 1).
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] unless `lo < hi` (finite), `col`
    /// is within the relation's arity, and `bins > 0`; backend evaluation
    /// errors; [`EngineError::ZeroEvidence`] when conditioning rejects
    /// all mass.
    pub fn histogram(
        &self,
        rel: RelId,
        col: usize,
        lo: f64,
        hi: f64,
        bins: usize,
    ) -> Result<ColumnHistogram, EngineError> {
        match self.answer_one(QuerySet::new().histogram(rel, col, lo, hi, bins))? {
            Answer::Histogram(h) => Ok(h),
            _ => unreachable!("histogram query answers with Answer::Histogram"),
        }
    }

    /// The marginal of **every** tuple of `rel` occurring in some world,
    /// sorted by tuple — O(distinct tuples) memory.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let r = s.program().catalog.require("R").unwrap();
    /// let ms = s.eval().marginals(r).unwrap();
    /// assert_eq!(ms.len(), 2);
    /// assert!((ms[0].1 - 0.75).abs() < 1e-12, "P(R(0))");
    /// assert!((ms[1].1 - 0.25).abs() < 1e-12, "P(R(1))");
    /// ```
    ///
    /// Under conditioning the marginals are **posterior** marginals
    /// (self-normalized).
    ///
    /// # Errors
    /// Backend evaluation errors; [`EngineError::ZeroEvidence`] when
    /// conditioning rejects all mass.
    pub fn marginals(&self, rel: RelId) -> Result<Vec<(Fact, f64)>, EngineError> {
        match self.answer_one(QuerySet::new().marginals(rel))? {
            Answer::Marginals(rows) => Ok(rows),
            _ => unreachable!("marginals query answers with Answer::Marginals"),
        }
    }

    /// The weighted `q`-quantile of the values at column `col` of `rel`:
    /// each value occurrence is weighted by its world's probability, and
    /// the quantile is the smallest value whose cumulative weight reaches
    /// `q` of the total observed value weight — O(distinct values)
    /// memory. Returns `None` when no world carries a numeric value in
    /// the column.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("H(Normal<0.0, 1.0>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let h = s.program().catalog.require("H").unwrap();
    /// let median = s.eval().sample(4000).seed(3).quantile(h, 0, 0.5).unwrap().unwrap();
    /// assert!(median.abs() < 0.1, "median of a standard normal ≈ 0");
    /// ```
    ///
    /// Quantiles are invariant under rescaling the weights, so the
    /// conditioned reading needs no renormalization; impossible evidence
    /// still reports [`EngineError::ZeroEvidence`].
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] unless `q ∈ [0, 1]` and `col` is
    /// within the relation's arity; backend evaluation errors;
    /// [`EngineError::ZeroEvidence`] when conditioning rejects all mass.
    pub fn quantile(&self, rel: RelId, col: usize, q: f64) -> Result<Option<f64>, EngineError> {
        match self.answer_one(QuerySet::new().quantile(rel, col, q))? {
            Answer::Quantile(v) => Ok(v),
            _ => unreachable!("quantile query answers with Answer::Quantile"),
        }
    }

    /// The tail probability `P(some fact of rel has column value ≥
    /// threshold)` — a counting event over the half-open value range
    /// `[threshold, ∞)`, streamed in O(1) memory. Deficit mass counts as
    /// not exceeding the threshold.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source("H(Normal<0.0, 1.0>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let h = s.program().catalog.require("H").unwrap();
    /// let p = s.eval().sample(4000).seed(3).tail_probability(h, 0, 0.0).unwrap();
    /// assert!((p - 0.5).abs() < 0.05, "P(N(0,1) >= 0) = 1/2");
    /// ```
    ///
    /// Under conditioning this is the **posterior** tail probability
    /// (self-normalized).
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] unless `col` is within the
    /// relation's arity and `threshold` is not NaN; backend evaluation
    /// errors; [`EngineError::ZeroEvidence`] when conditioning rejects
    /// all mass.
    pub fn tail_probability(
        &self,
        rel: RelId,
        col: usize,
        threshold: f64,
    ) -> Result<f64, EngineError> {
        match self.answer_one(QuerySet::new().tail(rel, col, threshold))? {
            Answer::Tail(p) => Ok(p),
            _ => unreachable!("tail query answers with Answer::Tail"),
        }
    }

    /// The **evidence summary** of a conditioned evaluation: the estimated
    /// evidence mass (the normalizing constant — `P(evidence ∧ termination)`
    /// on exact backends, the self-normalizing constant `1/N·ΣLᵢ` on
    /// likelihood-weighted Monte-Carlo) and the effective sample size
    /// `(Σw)²/Σw²` of the weighted stream. Works unconditioned too, where
    /// it reports the observed world mass and the world/run count.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. S(Flip<0.8>) :- R(1).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let ev = s.eval().given("S(1).").evidence().unwrap();
    /// assert!((ev.mass - 0.4).abs() < 1e-12, "P(S(1)) = 0.5 · 0.8");
    /// assert!(ev.ess >= 1.0);
    /// ```
    ///
    /// # Errors
    /// Backend evaluation errors; [`EngineError::ZeroEvidence`] when
    /// conditioning rejects all mass.
    pub fn evidence(&self) -> Result<EvidenceSummary, EngineError> {
        // The empty QuerySet is the diagnostics-only request: one pass
        // through the shared normalizer, no statistic sinks. Conditioned
        // zero mass is ZeroEvidence; an unconditioned all-deficit stream
        // (every run over budget) legitimately reports mass 0.
        Ok(self.answer(&QuerySet::new())?.evidence())
    }

    /// Runs a **single** sequential chase under the configured policy,
    /// seed, and budget, recording the per-step trace — the debugging
    /// terminal.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let s = Session::from_source(
    ///     "R(Flip<0.5>) :- true. S(X) :- R(X).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let run = s.eval().seed(11).trace().unwrap();
    /// assert_eq!(run.trace.len(), run.steps);
    /// assert!(run.steps >= 3, "sample, deliver, copy");
    /// ```
    ///
    /// Traces the **prior** chase process: a program's own `@observe`
    /// clauses do not re-weight a single run, so they are reported in the
    /// run's instance but do not alter the trace.
    ///
    /// # Errors
    /// Runtime distribution failures; [`EngineError::InvalidRequest`] if
    /// per-request [`given`](Evaluation::given) evidence was supplied —
    /// a single run cannot represent a posterior, and silently tracing
    /// the prior would misread as one.
    pub fn trace(&self) -> Result<ChaseRun, EngineError> {
        if !self.given.is_empty() {
            // Compile first so malformed evidence text surfaces as its own
            // error; text that compiles to zero observations (empty or
            // comment-only) is a no-op, not a rejection.
            let mut given_observes = 0usize;
            for text in &self.given {
                given_observes += compile_observations(self.program, text)?.len();
            }
            if given_observes > 0 {
                return Err(EngineError::InvalidRequest(
                    "trace() records a single prior chase run and cannot honor \
                     given() evidence; drop given() or use worlds()/statistic \
                     terminals for the posterior"
                        .to_string(),
                ));
            }
        }
        let existential: Vec<usize> = self
            .program
            .rules
            .iter()
            .filter(|r| r.is_existential())
            .map(|r| r.id)
            .collect();
        let mut policy = ChasePolicy::new(self.options.policy, &existential);
        let mut rng = StdRng::seed_from_u64(self.options.seed);
        run_sequential(
            self.program,
            &self.input,
            &mut policy,
            &mut rng,
            self.options.max_depth,
            true,
        )
        .map_err(EngineError::Dist)
    }

    /// Applies the program to a **probabilistic input** (Theorems 4.8, 5.5
    /// and 6.2): the output SPDB is the probability-weighted mixture of the
    /// outputs on each input world, each evaluated exactly on top of the
    /// evaluation's base facts. Input deficit passes through unchanged.
    ///
    /// ```
    /// use gdatalog_core::Session;
    /// use gdatalog_data::{tuple, Fact, Instance};
    /// use gdatalog_lang::SemanticsMode;
    /// use gdatalog_pdb::PossibleWorlds;
    ///
    /// let s = Session::from_source(
    ///     "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let city = s.program().catalog.require("City").unwrap();
    /// let quake = s.program().catalog.require("Quake").unwrap();
    /// let mut with_city = Instance::new();
    /// with_city.insert(city, tuple!["gotham"]);
    /// let mut input = PossibleWorlds::new();
    /// input.add(with_city, 0.5);
    /// input.add(Instance::new(), 0.5);
    /// let out = s.eval().transform(&input).unwrap();
    /// let p = out.marginal(&Fact::new(quake, tuple!["gotham", 1i64]));
    /// assert!((p - 0.5 * 0.4).abs() < 1e-12);
    /// ```
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] under a Monte-Carlo backend or
    /// under conditioning (the mixture of per-world posteriors is not the
    /// posterior of the mixture — condition the transformed table
    /// yourself); else the errors of [`Evaluation::worlds`].
    pub fn transform(&self, input: &PossibleWorlds) -> Result<PossibleWorlds, EngineError> {
        let choice = match self.choice {
            BackendChoice::Auto => BackendChoice::ExactSequential,
            BackendChoice::Mc | BackendChoice::Mh => {
                return Err(EngineError::InvalidRequest(
                    "transform() mixes exact world tables; do not combine it with \
                     .sample()/.sample_until()/.mh()"
                        .to_string(),
                ))
            }
            c => c,
        };
        if self.is_conditioned()? {
            return Err(EngineError::InvalidRequest(
                "transform() does not compose with conditioning: renormalizing \
                 per input world would weight the mixture wrongly"
                    .to_string(),
            ));
        }
        let mut parts = Vec::with_capacity(input.len());
        for (world, p) in input.iter() {
            let part = Evaluation {
                program: self.program,
                input: Cow::Owned(self.input.union(world)),
                options: self.options,
                choice,
                prepared: self.prepared.clone(),
                given: Vec::new(),
                ess_target: None,
            };
            parts.push((p, part.worlds()?));
        }
        let mut out = PossibleWorlds::mixture(parts);
        out.add_nontermination(input.deficit().nontermination);
        out.add_truncation(input.deficit().truncation);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;

    #[test]
    fn one_session_many_query_types_both_backends() {
        // Acceptance: a single compiled session serves marginal,
        // expectation, and histogram queries over exact AND MC backends.
        let mut session = Session::from_source(
            r#"
            rel City(symbol, real) input.
            Earthquake(C, Flip<R>) :- City(C, R).
            Alarm(C) :- Earthquake(C, 1).
        "#,
            SemanticsMode::Grohe,
        )
        .unwrap();
        session
            .insert_facts_text("City(gotham, 0.3). City(metropolis, 0.6).")
            .unwrap();
        let alarm = session.program().catalog.require("Alarm").unwrap();
        let quake = session.program().catalog.require("Earthquake").unwrap();
        let fact = Fact::new(alarm, tuple!["gotham"]);

        let exact_marginal = session.eval().exact().marginal(&fact).unwrap();
        assert!((exact_marginal - 0.3).abs() < 1e-12);
        let mc_marginal = session
            .eval()
            .sample(20_000)
            .seed(5)
            .threads(4)
            .marginal(&fact)
            .unwrap();
        assert!((mc_marginal - 0.3).abs() < 0.02);

        let q = Query::Rel(alarm);
        let exact_e = session
            .eval()
            .exact()
            .expectation(&q, AggFun::Count)
            .unwrap()
            .unwrap();
        assert!((exact_e.mean - 0.9).abs() < 1e-12, "0.3 + 0.6");
        let mc_e = session
            .eval()
            .sample(20_000)
            .seed(6)
            .expectation(&q, AggFun::Count)
            .unwrap()
            .unwrap();
        assert!((mc_e.mean - 0.9).abs() < 0.03);

        let exact_h = session
            .eval()
            .exact()
            .histogram(quake, 1, 0.0, 2.0, 2)
            .unwrap();
        assert!((exact_h.bins[0] - 1.1).abs() < 1e-12, "E[#zeros]");
        assert!((exact_h.bins[1] - 0.9).abs() < 1e-12, "E[#ones]");
        let mc_h = session
            .eval()
            .sample(20_000)
            .seed(7)
            .histogram(quake, 1, 0.0, 2.0, 2)
            .unwrap();
        assert!((mc_h.bins[1] - 0.9).abs() < 0.03);
    }

    #[test]
    fn incremental_edb_extends_results() {
        let mut session = Session::from_source(
            "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
            SemanticsMode::Grohe,
        )
        .unwrap();
        assert_eq!(session.eval().worlds().unwrap().len(), 1, "empty world");
        session.insert_facts_text("City(gotham).").unwrap();
        assert_eq!(session.inserted_facts(), 1);
        assert_eq!(session.eval().worlds().unwrap().len(), 2);
        // Duplicate insert is a set-semantics no-op.
        session.insert_facts_text("City(gotham).").unwrap();
        assert_eq!(session.inserted_facts(), 1);
    }

    #[test]
    fn hard_conditioning_renormalizes_exactly() {
        // Burglary-style chain: P(Quake=1) = 0.1; Alarm iff Trig=1, where
        // Trig fires w.p. 0.6 given a quake. Condition on the alarm.
        let session = Session::from_source(
            r#"
            Quake(Flip<0.1>) :- true.
            Trig(Flip<0.6>) :- Quake(1).
            Alarm() :- Trig(1).
        "#,
            SemanticsMode::Grohe,
        )
        .unwrap();
        let quake = session.program().catalog.require("Quake").unwrap();
        let fact = Fact::new(quake, tuple![1i64]);
        // Prior: P(Quake=1) = 0.1.
        let prior = session.eval().marginal(&fact).unwrap();
        assert!((prior - 0.1).abs() < 1e-12);
        // Posterior: P(Quake=1 | Alarm) = 1 (only quakes trigger alarms).
        let posterior = session.eval().given("Alarm().").marginal(&fact).unwrap();
        assert!((posterior - 1.0).abs() < 1e-12);
        // Evidence mass: P(Alarm) = 0.1 · 0.6.
        let ev = session.eval().given("Alarm().").evidence().unwrap();
        assert!((ev.mass - 0.06).abs() < 1e-12);
        // Posterior world table is a probability distribution again.
        let worlds = session.eval().given("Alarm().").worlds().unwrap();
        assert!((worlds.mass() - 1.0).abs() < 1e-12);
        assert_eq!(worlds.deficit().total(), 0.0);
    }

    #[test]
    fn program_level_observe_clauses_condition_every_evaluation() {
        let session = Session::from_source(
            r#"
            Quake(Flip<0.1>) :- true.
            Trig(Flip<0.6>) :- Quake(1).
            Alarm() :- Trig(1).
            @observe Alarm().
        "#,
            SemanticsMode::Grohe,
        )
        .unwrap();
        let quake = session.program().catalog.require("Quake").unwrap();
        let p = session
            .eval()
            .marginal(&Fact::new(quake, tuple![1i64]))
            .unwrap();
        assert!((p - 1.0).abs() < 1e-12, "@observe applies without given()");
    }

    #[test]
    fn soft_conditioning_is_bayes_rule() {
        // Two-component model: Mu ∈ {0, 4} uniformly; observe a Normal
        // reading of 4.0 with unit variance. Exact conditioning multiplies
        // each world by the Gaussian likelihood and renormalizes.
        let session = Session::from_source(
            "Mu(Categorical<0.0, 1.0, 4.0, 1.0>) :- true.",
            SemanticsMode::Grohe,
        )
        .unwrap();
        let mu = session.program().catalog.require("Mu").unwrap();
        let posterior = session
            .eval()
            .given("Normal<M, 1.0> == 4.0 :- Mu(M).")
            .marginal(&Fact::new(mu, tuple![4.0]))
            .unwrap();
        // Bayes: L(4|4)=φ(0), L(4|0)=φ(4); posterior = φ(0)/(φ(0)+φ(4)).
        let phi = |z: f64| (-0.5 * z * z).exp();
        let expect = phi(0.0) / (phi(0.0) + phi(4.0));
        assert!(
            (posterior - expect).abs() < 1e-12,
            "{posterior} vs {expect}"
        );
    }

    #[test]
    fn zero_evidence_is_an_error_not_a_nan() {
        let session = Session::from_source("R(Flip<1.0>) :- true.", SemanticsMode::Grohe).unwrap();
        let r = session.program().catalog.require("R").unwrap();
        let err = session
            .eval()
            .given("R(0).")
            .marginal(&Fact::new(r, tuple![0i64]))
            .unwrap_err();
        assert!(matches!(err, EngineError::ZeroEvidence));
        // expectation() reports it the same way — Ok(None) would be
        // indistinguishable from a legitimately empty query result.
        let err = session
            .eval()
            .given("R(0).")
            .expectation(&Query::Rel(r), AggFun::Count)
            .unwrap_err();
        assert!(matches!(err, EngineError::ZeroEvidence));
    }

    #[test]
    fn unconditioned_evidence_reports_all_deficit_mass_without_erroring() {
        // Every run exhausts the budget: the observed world mass is 0, but
        // no evidence was given, so this is a report — not ZeroEvidence.
        let session =
            Session::from_source("C(0.0). C(Normal<V, 1.0>) :- C(V).", SemanticsMode::Grohe)
                .unwrap();
        let ev = session
            .eval()
            .sample(20)
            .max_depth(10)
            .seed(1)
            .evidence()
            .unwrap();
        assert_eq!(ev.mass, 0.0);
        assert_eq!(ev.worlds, 0);
    }

    #[test]
    fn conditioned_pdb_transform_and_trace_are_rejected() {
        let session = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
        let err = session.eval().sample(10).given("R(1).").pdb().unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)));
        let err = session
            .eval()
            .given("R(1).")
            .transform(&PossibleWorlds::dirac(Instance::new()))
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)));
        // trace() cannot honor evidence — rejecting beats silently
        // tracing the prior as if it were a posterior-consistent run.
        let err = session.eval().given("R(1).").trace().unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)));
        // Malformed evidence text surfaces as its own error first.
        let err = session.eval().given("R(1").trace().unwrap_err();
        assert!(matches!(err, EngineError::Lang(_)));
        // Program-level @observe clauses do not block the debug terminal.
        let observed =
            Session::from_source("R(Flip<0.5>) :- true. @observe R(1).", SemanticsMode::Grohe)
                .unwrap();
        assert!(observed.eval().trace().is_ok());
    }

    #[test]
    fn empty_evidence_text_is_a_no_op_not_a_condition() {
        // given("") compiles to zero observations: the evaluation must
        // behave exactly like the unconditioned one — same budget-deficit
        // handling, and no terminal rejections.
        let session =
            Session::from_source("G(0). G(Geometric<0.5 | X>) :- G(X).", SemanticsMode::Grohe)
                .unwrap();
        let g = session.program().catalog.require("G").unwrap();
        let fact = Fact::new(g, tuple![0i64]);
        let base = session
            .eval()
            .sample(200)
            .seed(4)
            .max_depth(5)
            .marginal(&fact)
            .unwrap();
        for noop in ["", "   ", "% just a comment"] {
            let same = session
                .eval()
                .sample(200)
                .seed(4)
                .max_depth(5)
                .given(noop)
                .marginal(&fact)
                .unwrap();
            assert_eq!(base.to_bits(), same.to_bits(), "{noop:?}");
            assert!(session.eval().given(noop).trace().is_ok());
            assert!(session.eval().sample(10).given(noop).pdb().is_ok());
        }
    }

    #[test]
    fn invalid_evidence_text_surfaces_at_the_terminal() {
        let session = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
        let r = session.program().catalog.require("R").unwrap();
        let fact = Fact::new(r, tuple![1i64]);
        for bad in ["NoSuchRel(1).", "Zorp<0.5> == 1.", "R(X).", "R(1"] {
            let err = session.eval().given(bad).marginal(&fact);
            assert!(err.is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn mc_likelihood_weighting_matches_exact_posterior() {
        let session = Session::from_source(
            r#"
            Quake(Flip<0.2>) :- true.
            Trig(Flip<0.7>) :- Quake(1).
            Trig(Flip<0.1>) :- Quake(0).
            Alarm() :- Trig(1).
        "#,
            SemanticsMode::Grohe,
        )
        .unwrap();
        let quake = session.program().catalog.require("Quake").unwrap();
        let fact = Fact::new(quake, tuple![1i64]);
        let exact = session
            .eval()
            .exact()
            .given("Alarm().")
            .marginal(&fact)
            .unwrap();
        // Bayes: 0.2·0.7 / (0.2·0.7 + 0.8·0.1) = 0.636…
        assert!((exact - 0.14 / 0.22).abs() < 1e-12);
        let mc = session
            .eval()
            .sample(40_000)
            .seed(11)
            .given("Alarm().")
            .marginal(&fact)
            .unwrap();
        assert!((mc - exact).abs() < 0.02, "mc = {mc}, exact = {exact}");
        // Deterministic: repeat bit-identical; thread-count invariant to fp
        // re-association.
        let mc2 = session
            .eval()
            .sample(40_000)
            .seed(11)
            .given("Alarm().")
            .marginal(&fact)
            .unwrap();
        assert_eq!(mc.to_bits(), mc2.to_bits());
        let mc4 = session
            .eval()
            .sample(40_000)
            .seed(11)
            .threads(4)
            .given("Alarm().")
            .marginal(&fact)
            .unwrap();
        assert!((mc4 - mc).abs() < 1e-12);
    }

    #[test]
    fn pdb_rejects_exact_backend() {
        let session = Session::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
        let err = session.eval().exact().pdb().unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)));
    }

    #[test]
    fn auto_backend_picks_mc_for_continuous() {
        let session =
            Session::from_source("H(Normal<0.0, 1.0>) :- true.", SemanticsMode::Grohe).unwrap();
        let h = session.program().catalog.require("H").unwrap();
        // marginal on a continuous program auto-routes to Monte-Carlo
        // rather than failing with NotDiscrete.
        let ms = session.eval().sample(200).seed(1).marginals(h).unwrap();
        assert_eq!(ms.len(), 200, "a.s. distinct continuous samples");
        // worlds() keeps the exact backend and reports the obstruction.
        assert!(matches!(
            session.eval().worlds().unwrap_err(),
            EngineError::NotDiscrete(_)
        ));
    }
}
