//! Saturation-accelerated sequential chase: between sampling steps, all
//! deterministic rules are driven to fixpoint at once by the semi-naive
//! Datalog substrate, instead of firing one deterministic pair per step.
//!
//! Soundness: this is the [`crate::policy::PolicyKind::DeterministicFirst`]
//! chase with the deterministic prefix fast-forwarded; by Theorem 6.1 the
//! resulting SPDB is independent of the chase order, so the distribution is
//! unchanged. The speedup (deterministic work goes from one
//! `App(D)`-recomputation per fact to one fixpoint per sampling step) is
//! quantified by the `chase` ablation bench.
//!
//! The saturation itself is **incremental**: one index follows the
//! instance across the whole run, and after each sampled fact the
//! deterministic fixpoint *continues* from the delta `{f}` via
//! [`gdatalog_datalog::PlannedProgram::saturate_in_place`] rather than
//! restarting from the whole instance — per sampling step the
//! deterministic work is O(|Δ| + new matches), not O(|D|).

use gdatalog_data::Instance;
use gdatalog_datalog::{DatalogProgram, DatalogRule};
use gdatalog_dist::DistError;
use gdatalog_lang::{CompiledProgram, RuleKind};
use rand::Rng;

use crate::applicability::{AppPair, PreparedProgram};
use crate::sequential::{fire, ChaseRun, RunOutcome, TraceStep};

/// The deterministic fragment of a compiled program, as a classical
/// Datalog program (reusable across runs).
pub fn deterministic_fragment(program: &CompiledProgram) -> DatalogProgram {
    let rules = program
        .rules
        .iter()
        .filter_map(|r| match &r.kind {
            RuleKind::Deterministic { head } => Some(
                DatalogRule::new(head.clone(), r.body.clone(), r.n_vars)
                    .expect("compiled rules are safe"),
            ),
            RuleKind::Existential(_) => None,
        })
        .collect();
    DatalogProgram::new(rules)
}

/// Computes the applicable pairs of **existential** rules only (canonical
/// order), assuming the instance is deterministically saturated.
///
/// Diagnostic/compatibility entry point: plans the program and builds a
/// fresh index per call. The chase itself uses
/// [`PreparedProgram::applicable_existential_pairs`] on a maintained index.
pub fn applicable_existential_pairs(
    program: &CompiledProgram,
    instance: &Instance,
) -> Vec<AppPair> {
    let prepared = PreparedProgram::new(program);
    let index = prepared.new_index(instance);
    prepared.applicable_existential_pairs(program, instance, &index)
}

/// Runs the saturation-accelerated sequential chase. `max_steps` bounds
/// the total of *sampling* steps plus derived deterministic facts, making
/// budgets comparable with [`crate::sequential::run_sequential`].
///
/// # Errors
/// Runtime distribution failures.
pub fn run_saturating(
    program: &CompiledProgram,
    input: &Instance,
    rng: &mut dyn Rng,
    max_steps: usize,
    record_trace: bool,
) -> Result<ChaseRun, DistError> {
    let prepared = PreparedProgram::new(program);
    run_saturating_prepared(program, &prepared, input, rng, max_steps, record_trace)
}

/// [`run_saturating`] on a pre-planned program, with one incrementally
/// maintained index shared between the deterministic saturation and the
/// existential applicability probes.
///
/// # Errors
/// Runtime distribution failures.
pub fn run_saturating_prepared(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    input: &Instance,
    rng: &mut dyn Rng,
    max_steps: usize,
    record_trace: bool,
) -> Result<ChaseRun, DistError> {
    let mut steps = 0usize;
    let mut log_weight = 0.0;
    let mut trace = Vec::new();

    // Initial deterministic closure (full round 0).
    let mut instance = input.clone();
    let mut index = prepared.new_index(&instance);
    let stats = prepared
        .det()
        .saturate_in_place(prepared.specs(), &mut instance, &mut index, None);
    steps += stats.derived_facts;

    loop {
        let app = prepared.applicable_existential_pairs(program, &instance, &index);
        if app.is_empty() {
            return Ok(ChaseRun {
                outcome: RunOutcome::Terminated,
                instance,
                steps,
                log_weight,
                trace,
            });
        }
        if steps >= max_steps {
            return Ok(ChaseRun {
                outcome: RunOutcome::BudgetExhausted,
                instance,
                steps,
                log_weight,
                trace,
            });
        }
        let pair = app[0].clone();
        let fired = fire(program, &program.rules[pair.rule], &pair.valuation, rng)?;
        let rel = fired.fact.rel;
        let tuple = fired.fact.tuple.clone();
        let fresh = instance.insert(rel, tuple.clone());
        steps += 1;
        log_weight += fired.log_density;
        if record_trace {
            trace.push(TraceStep {
                rule: pair.rule,
                valuation: pair.valuation,
                sampled: fired.sampled,
                log_density: fired.log_density,
            });
        }
        if fresh {
            index.absorb(rel, &tuple);
            // Continue the deterministic fixpoint from the new fact only.
            let stats = prepared.det().saturate_in_place(
                prepared.specs(),
                &mut instance,
                &mut index,
                Some(gdatalog_datalog::Delta::single(rel, tuple)),
            );
            steps += stats.derived_facts;
        }
    }
}

/// The old rebuild-per-step saturating chase: every sampling step replans
/// the program, rebuilds all indexes, and reruns the deterministic
/// fixpoint from the whole instance.
///
/// Kept **only** as the measured baseline for the incremental chase (see
/// the `bench` experiment and `BENCH_PR1.json`); do not use elsewhere.
///
/// # Errors
/// Runtime distribution failures.
#[doc(hidden)]
pub fn run_saturating_rebuild_baseline(
    program: &CompiledProgram,
    input: &Instance,
    rng: &mut dyn Rng,
    max_steps: usize,
) -> Result<ChaseRun, DistError> {
    let det = deterministic_fragment(program);
    let mut steps = 0usize;
    let mut log_weight = 0.0;

    let (mut instance, stats) = gdatalog_datalog::fixpoint_seminaive_rebuild(&det, input);
    steps += stats.derived_facts;
    loop {
        let app = applicable_existential_pairs(program, &instance);
        if app.is_empty() {
            return Ok(ChaseRun {
                outcome: RunOutcome::Terminated,
                instance,
                steps,
                log_weight,
                trace: Vec::new(),
            });
        }
        if steps >= max_steps {
            return Ok(ChaseRun {
                outcome: RunOutcome::BudgetExhausted,
                instance,
                steps,
                log_weight,
                trace: Vec::new(),
            });
        }
        let pair = app[0].clone();
        let fired = fire(program, &program.rules[pair.rule], &pair.valuation, rng)?;
        instance.insert_fact(fired.fact);
        steps += 1;
        log_weight += fired.log_density;
        // The rebuild being benchmarked away: O(|D|) per sampling step.
        let (next, stats) = gdatalog_datalog::fixpoint_seminaive_rebuild(&det, &instance);
        instance = next;
        steps += stats.derived_facts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    const BURGLARY: &str = r#"
        rel City(symbol, real) input.
        rel House(symbol, symbol) input.
        City(gotham, 0.3).
        House(h1, gotham).
        House(h2, gotham).
        Earthquake(C, Flip<0.1>) :- City(C, R).
        Unit(H, C) :- House(H, C).
        Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
        Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
        Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
        Alarm(X) :- Trig(X, 1).
    "#;

    #[test]
    fn saturating_run_terminates_with_same_schema() {
        let prog = compile(BURGLARY);
        let mut rng = StdRng::seed_from_u64(9);
        let run = run_saturating(&prog, &prog.initial_instance, &mut rng, 100_000, true).unwrap();
        assert_eq!(run.outcome, RunOutcome::Terminated);
        for fd in &prog.fds {
            assert!(fd.check(&run.instance).is_ok());
        }
        // Trace only contains sampling steps.
        assert!(run.trace.iter().all(|t| !t.sampled.is_empty()));
    }

    #[test]
    fn saturating_reaches_a_saturated_final_instance() {
        // On the final instance no rule at all is applicable — the
        // incremental continuation must not leave deterministic rules
        // unfired.
        let prog = compile(BURGLARY);
        for seed in 0..40 {
            let mut rng = StdRng::seed_from_u64(seed);
            let run =
                run_saturating(&prog, &prog.initial_instance, &mut rng, 100_000, false).unwrap();
            assert_eq!(run.outcome, RunOutcome::Terminated);
            assert!(
                crate::applicability::applicable_pairs(&prog, &run.instance).is_empty(),
                "seed {seed}: final instance not saturated"
            );
        }
    }

    #[test]
    fn saturating_marginals_match_plain_sequential() {
        let prog = compile(BURGLARY);
        let alarm = prog.catalog.require("Alarm").unwrap();
        let h1 = gdatalog_data::tuple!["h1"];
        let runs = 4_000u32;
        let mut hits_plain = 0u32;
        let mut hits_sat = 0u32;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(u64::from(seed));
            let run =
                run_saturating(&prog, &prog.initial_instance, &mut rng, 100_000, false).unwrap();
            if run.instance.contains(alarm, &h1) {
                hits_sat += 1;
            }
            let mut rng = StdRng::seed_from_u64(u64::from(seed));
            let mut policy =
                crate::policy::ChasePolicy::new(crate::policy::PolicyKind::Canonical, &[]);
            let run = crate::sequential::run_sequential(
                &prog,
                &prog.initial_instance,
                &mut policy,
                &mut rng,
                100_000,
                false,
            )
            .unwrap();
            if run.instance.contains(alarm, &h1) {
                hits_plain += 1;
            }
        }
        let expect = 1.0 - (1.0 - 0.1 * 0.6) * (1.0 - 0.3 * 0.9);
        let p_sat = f64::from(hits_sat) / f64::from(runs);
        let p_plain = f64::from(hits_plain) / f64::from(runs);
        assert!(
            (p_sat - expect).abs() < 0.04,
            "saturating: {p_sat} vs {expect}"
        );
        assert!(
            (p_plain - expect).abs() < 0.04,
            "plain: {p_plain} vs {expect}"
        );
    }

    #[test]
    fn deterministic_fragment_extraction() {
        let prog = compile(BURGLARY);
        let det = deterministic_fragment(&prog);
        // Unit + Alarm + 4 delivery rules (one per random source rule).
        assert_eq!(det.rules.len(), 6);
    }
}
