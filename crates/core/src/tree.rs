//! Explicit chase trees (Def. 4.2 / Figure 1 of the paper) for discrete
//! programs: nodes labelled with instances, edges with the probabilities of
//! the chase-step measure, leaves marked as terminated or budget-cut.
//!
//! The tree is primarily a pedagogical/diagnostic artifact (the engine
//! proper enumerates without materializing it); it regenerates Figure 1's
//! picture — finite maximal paths mapping to instances, budget-cut paths
//! mapping to `err` — as a path census and a DOT rendering.

use gdatalog_data::{Catalog, Instance};
use gdatalog_lang::CompiledProgram;

use crate::applicability::PreparedProgram;
use crate::exact::{apply_branch, existential_branches, ExactConfig};
use crate::policy::ChasePolicy;
use crate::EngineError;
use gdatalog_lang::RuleKind;

/// One node of a chase tree.
#[derive(Debug, Clone)]
pub struct ChaseNode {
    /// The instance labelling the node.
    pub instance: Instance,
    /// Parent node index (`None` for the root).
    pub parent: Option<usize>,
    /// Probability of the path from the root to this node.
    pub path_probability: f64,
    /// Child node indices with their one-step probabilities.
    pub children: Vec<(usize, f64)>,
    /// Which rule fired *at this node* (`None` for leaves).
    pub fired_rule: Option<usize>,
    /// Depth (steps from the root).
    pub depth: usize,
    /// Whether this node is a leaf because no rule is applicable
    /// (a finite maximal path — maps to an instance under `lim-inst`).
    pub terminated: bool,
    /// Whether this node is a leaf because the depth budget was hit
    /// (maps to `err`).
    pub cut: bool,
}

/// An explicit (sequential) chase tree.
#[derive(Debug, Clone)]
pub struct ChaseTree {
    /// Nodes in creation order; node 0 is the root.
    pub nodes: Vec<ChaseNode>,
    /// Probability mass truncated from infinite supports during expansion.
    pub truncated_mass: f64,
}

impl ChaseTree {
    /// Terminated leaves (finite maximal paths).
    pub fn leaves(&self) -> impl Iterator<Item = &ChaseNode> {
        self.nodes.iter().filter(|n| n.terminated)
    }

    /// Budget-cut leaves (the `err` mass).
    pub fn cut_nodes(&self) -> impl Iterator<Item = &ChaseNode> {
        self.nodes.iter().filter(|n| n.cut)
    }

    /// Total probability mass of terminated leaves.
    pub fn terminated_mass(&self) -> f64 {
        self.leaves().map(|n| n.path_probability).sum()
    }

    /// Total probability mass of budget-cut paths.
    pub fn cut_mass(&self) -> f64 {
        self.cut_nodes().map(|n| n.path_probability).sum()
    }

    /// Mass of terminated leaves at each depth — the "path census" used to
    /// regenerate Figure 1 quantitatively (experiment E8).
    pub fn mass_by_depth(&self) -> Vec<(usize, f64)> {
        let mut by_depth: Vec<(usize, f64)> = Vec::new();
        for n in self.leaves() {
            match by_depth.iter_mut().find(|(d, _)| *d == n.depth) {
                Some((_, m)) => *m += n.path_probability,
                None => by_depth.push((n.depth, n.path_probability)),
            }
        }
        by_depth.sort_by_key(|&(d, _)| d);
        by_depth
    }

    /// Renders the tree in Graphviz DOT format. Node labels show the fact
    /// count and path probability; terminated leaves are doubly circled,
    /// cut leaves are drawn dashed (they correspond to `err`).
    pub fn to_dot(&self, catalog: &Catalog) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph chase {\n  rankdir=TB;\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let shape = if n.terminated {
                "doublecircle"
            } else if n.cut {
                "box"
            } else {
                "circle"
            };
            let style = if n.cut { ", style=dashed" } else { "" };
            let label = if n.instance.len() <= 4 {
                gdatalog_data::canonical_text(&n.instance, catalog)
                    .trim_end()
                    .replace('\n', "\\n")
            } else {
                format!("{} facts", n.instance.len())
            };
            let _ = writeln!(
                out,
                "  n{i} [shape={shape}{style}, label=\"{label}\\np={:.4}\"];",
                n.path_probability
            );
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for (c, p) in &n.children {
                let _ = writeln!(out, "  n{i} -> n{c} [label=\"{p:.4}\"];");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Builds the explicit sequential chase tree of a **discrete** program
/// under `policy`, cutting paths at `config.max_depth`.
///
/// # Errors
/// [`EngineError::NotDiscrete`] for continuous programs.
pub fn build_chase_tree(
    program: &CompiledProgram,
    input: &Instance,
    policy: &mut ChasePolicy,
    config: ExactConfig,
) -> Result<ChaseTree, EngineError> {
    if !program.all_discrete() {
        return Err(EngineError::NotDiscrete(
            "chase trees are materialized for discrete programs only".to_string(),
        ));
    }
    let mut tree = ChaseTree {
        nodes: vec![ChaseNode {
            instance: input.clone(),
            parent: None,
            path_probability: 1.0,
            children: Vec::new(),
            fired_rule: None,
            depth: 0,
            terminated: false,
            cut: false,
        }],
        truncated_mass: 0.0,
    };
    let prepared = PreparedProgram::new(program);
    let mut frontier = vec![0usize];
    while let Some(ix) = frontier.pop() {
        let (instance, p, depth) = {
            let n = &tree.nodes[ix];
            (n.instance.clone(), n.path_probability, n.depth)
        };
        let index = prepared.new_index(&instance);
        let app = prepared.applicable_pairs(program, &instance, &index);
        if app.is_empty() {
            tree.nodes[ix].terminated = true;
            continue;
        }
        if depth >= config.max_depth || (config.min_path_prob > 0.0 && p < config.min_path_prob) {
            tree.nodes[ix].cut = true;
            continue;
        }
        let pair = app[policy.select(&app)].clone();
        tree.nodes[ix].fired_rule = Some(pair.rule);
        let branches: Vec<(Vec<gdatalog_data::Value>, f64)> = match &program.rules[pair.rule].kind {
            RuleKind::Deterministic { .. } => vec![(Vec::new(), 1.0)],
            RuleKind::Existential(_) => {
                let (bs, truncated) = existential_branches(program, &pair, config.support_tol)?;
                tree.truncated_mass += p * truncated;
                bs
            }
        };
        for (outcomes, q) in branches {
            let child = apply_branch(program, &pair, &outcomes, &instance);
            let cix = tree.nodes.len();
            tree.nodes.push(ChaseNode {
                instance: child,
                parent: Some(ix),
                path_probability: p * q,
                children: Vec::new(),
                fired_rule: None,
                depth: depth + 1,
                terminated: false,
                cut: false,
            });
            tree.nodes[ix].children.push((cix, q));
            frontier.push(cix);
        }
    }
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    fn tree_of(src: &str, max_depth: usize) -> (CompiledProgram, ChaseTree) {
        let prog = compile(src);
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        let cfg = ExactConfig {
            max_depth,
            ..ExactConfig::default()
        };
        let tree = build_chase_tree(&prog, &prog.initial_instance, &mut policy, cfg).unwrap();
        (prog, tree)
    }

    #[test]
    fn single_flip_tree_shape() {
        let (_, tree) = tree_of("R(Flip<0.5>) :- true.", 100);
        // Root → 2 sampling children → each gets a delivery child.
        assert_eq!(tree.nodes.len(), 5);
        assert_eq!(tree.leaves().count(), 2);
        assert!((tree.terminated_mass() - 1.0).abs() < 1e-12);
        assert_eq!(tree.cut_mass(), 0.0);
        // Leaves sit at depth 2.
        assert_eq!(tree.mass_by_depth(), vec![(2, 1.0)]);
    }

    #[test]
    fn two_flips_tree_has_four_leaves() {
        let (_, tree) = tree_of("R(Flip<0.5>) :- true. S(Flip<0.5>) :- true.", 100);
        assert_eq!(tree.leaves().count(), 4);
        assert!((tree.terminated_mass() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_cut_paths_are_err_mass() {
        let (_, tree) = tree_of(
            r#"
            G(0).
            G(Geometric<0.5 | X>) :- G(X).
        "#,
            4,
        );
        assert!(tree.cut_mass() > 0.0, "cut mass must be positive");
        let total = tree.terminated_mass() + tree.cut_mass() + tree.truncated_mass;
        assert!((total - 1.0).abs() < 1e-6, "mass accounting: {total}");
    }

    #[test]
    fn dot_rendering_mentions_all_nodes() {
        let (prog, tree) = tree_of("R(Flip<0.5>) :- true.", 100);
        let dot = tree.to_dot(&prog.catalog);
        assert!(dot.starts_with("digraph chase {"));
        assert_eq!(dot.matches("doublecircle").count(), 2);
        assert!(dot.contains("->"));
    }

    #[test]
    fn continuous_program_rejected() {
        let prog = compile("X(Normal<0.0, 1.0>) :- true.");
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        assert!(build_chase_tree(
            &prog,
            &prog.initial_instance,
            &mut policy,
            ExactConfig::default()
        )
        .is_err());
    }
}
