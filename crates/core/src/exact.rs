//! Exact chase-tree enumeration for discrete programs: computes the
//! push-forward measure of the chase Markov process along `lim-inst`
//! (§4.2/§4.3) **exactly**, as a finite [`PossibleWorlds`] table.
//!
//! * Finite-support distributions (Flip, Categorical, …) enumerate
//!   completely; countably-infinite ones (Poisson, Geometric) are truncated
//!   at tail mass `support_tol`, and the truncated mass is tracked as the
//!   `truncation` component of the SPDB deficit.
//! * Paths longer than `max_depth` contribute their probability to the
//!   `nontermination` deficit — the measure of the `err` outcome of §4.2.
//! * Both the sequential chase (with an arbitrary policy, Def. 4.2) and the
//!   parallel chase (Def. 5.2) are supported; Theorem 6.1/6.2 — which this
//!   suite verifies rather than assumes — says they all yield the same
//!   world table.

use gdatalog_data::{Instance, Tuple, Value};
use gdatalog_lang::{CompiledProgram, RuleKind};
use gdatalog_pdb::PossibleWorlds;

use crate::applicability::{eval_terms, AppPair, PreparedProgram};
use crate::policy::ChasePolicy;
use crate::EngineError;

/// Configuration for exact enumeration.
#[derive(Debug, Clone, Copy)]
pub struct ExactConfig {
    /// Maximum chase steps along any path (sequential) or rounds
    /// (parallel); deeper paths are charged to the non-termination deficit.
    pub max_depth: usize,
    /// Tail mass at which countably-infinite supports are truncated.
    pub support_tol: f64,
    /// Paths whose probability falls below this threshold are pruned into
    /// the non-termination deficit (0 disables pruning).
    pub min_path_prob: f64,
    /// Cooperative cancellation: checked between enumeration nodes, so a
    /// serving layer can bound request latency. `None` never cancels.
    pub deadline: Option<std::time::Instant>,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_depth: 10_000,
            support_tol: 1e-9,
            min_path_prob: 0.0,
            deadline: None,
        }
    }
}

/// Returns [`EngineError::DeadlineExceeded`] once `deadline` has passed.
/// The chase loops call this between bounded units of work (enumeration
/// nodes, Monte-Carlo runs), which keeps cancellation cooperative — no
/// state is left half-mutated — while bounding the overage to one unit.
pub(crate) fn check_deadline(deadline: Option<std::time::Instant>) -> Result<(), EngineError> {
    match deadline {
        Some(d) if std::time::Instant::now() >= d => Err(EngineError::DeadlineExceeded),
        _ => Ok(()),
    }
}

/// The branches of firing one existential rule: every combination of
/// outcomes of its samples, with its probability, plus truncated mass.
#[allow(clippy::type_complexity)]
pub(crate) fn existential_branches(
    program: &CompiledProgram,
    pair: &AppPair,
    tol: f64,
) -> Result<(Vec<(Vec<Value>, f64)>, f64), EngineError> {
    let rule = &program.rules[pair.rule];
    let RuleKind::Existential(e) = &rule.kind else {
        unreachable!("existential_branches on deterministic rule");
    };
    let mut combos: Vec<(Vec<Value>, f64)> = vec![(Vec::new(), 1.0)];
    let mut tabulated = 1.0;
    for spec in &e.samples {
        let params = eval_terms(&spec.param_terms, &pair.valuation);
        let support = spec
            .dist
            .enumerate(&params, tol)
            .map_err(EngineError::Dist)?;
        tabulated *= support.tabulated_mass();
        let mut next = Vec::with_capacity(combos.len() * support.outcomes.len());
        for (prefix, p) in &combos {
            for (v, q) in &support.outcomes {
                let mut ext = prefix.clone();
                ext.push(v.clone());
                next.push((ext, p * q));
            }
        }
        combos = next;
    }
    Ok((combos, (1.0 - tabulated).max(0.0)))
}

/// Applies a fired branch of `pair` to `instance`.
pub(crate) fn apply_branch(
    program: &CompiledProgram,
    pair: &AppPair,
    outcomes: &[Value],
    instance: &Instance,
) -> Instance {
    let rule = &program.rules[pair.rule];
    let mut next = instance.clone();
    match &rule.kind {
        RuleKind::Deterministic { head } => {
            let tuple: Tuple = head
                .args
                .iter()
                .map(|t| crate::applicability::eval_term(t, &pair.valuation))
                .collect();
            next.insert(head.rel, tuple);
        }
        RuleKind::Existential(e) => {
            let mut values = eval_terms(&e.key_terms, &pair.valuation);
            values.extend(outcomes.iter().cloned());
            next.insert(e.aux_rel, Tuple::from(values));
        }
    }
    next
}

/// Exact **sequential** enumeration under an arbitrary chase policy.
///
/// # Errors
/// [`EngineError::NotDiscrete`] if the program uses a continuous
/// distribution; [`EngineError::Dist`] on runtime parameter failures.
pub fn enumerate_sequential(
    program: &CompiledProgram,
    input: &Instance,
    policy: &mut ChasePolicy,
    config: ExactConfig,
) -> Result<PossibleWorlds, EngineError> {
    let prepared = PreparedProgram::new(program);
    enumerate_sequential_prepared(program, &prepared, input, policy, config)
}

/// [`enumerate_sequential`] against caller-held chase plans, the serving
/// fast path: a cached program's [`PreparedProgram`] is built once and
/// reused across requests instead of being re-planned per call.
///
/// # Errors
/// Same as [`enumerate_sequential`].
pub fn enumerate_sequential_prepared(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    input: &Instance,
    policy: &mut ChasePolicy,
    config: ExactConfig,
) -> Result<PossibleWorlds, EngineError> {
    require_discrete(program)?;
    let mut worlds = PossibleWorlds::new();
    // DFS over (instance, path probability, depth). Bodies are planned
    // once; each node builds its index fresh (branches share no instance).
    let mut stack: Vec<(Instance, f64, usize)> = vec![(input.clone(), 1.0, 0)];
    while let Some((instance, p, depth)) = stack.pop() {
        check_deadline(config.deadline)?;
        if p == 0.0 {
            continue;
        }
        let index = prepared.new_index(&instance);
        let app = prepared.applicable_pairs(program, &instance, &index);
        if app.is_empty() {
            worlds.add(instance, p);
            continue;
        }
        if depth >= config.max_depth || (config.min_path_prob > 0.0 && p < config.min_path_prob) {
            worlds.add_nontermination(p);
            continue;
        }
        let pair = app[policy.select(&app)].clone();
        match &program.rules[pair.rule].kind {
            RuleKind::Deterministic { .. } => {
                let next = apply_branch(program, &pair, &[], &instance);
                stack.push((next, p, depth + 1));
            }
            RuleKind::Existential(_) => {
                let (branches, truncated) =
                    existential_branches(program, &pair, config.support_tol)?;
                worlds.add_truncation(p * truncated);
                for (outcomes, q) in branches {
                    let next = apply_branch(program, &pair, &outcomes, &instance);
                    stack.push((next, p * q, depth + 1));
                }
            }
        }
    }
    Ok(worlds)
}

/// Exact **parallel** enumeration (Def. 5.2): at every node all applicable
/// pairs fire; branches are the product of all their outcome combinations.
/// Shared experiments (Bárány translation) are grouped by key and sampled
/// once, as in [`crate::parallel`].
///
/// # Errors
/// Same as [`enumerate_sequential`].
pub fn enumerate_parallel(
    program: &CompiledProgram,
    input: &Instance,
    config: ExactConfig,
) -> Result<PossibleWorlds, EngineError> {
    let prepared = PreparedProgram::new(program);
    enumerate_parallel_prepared(program, &prepared, input, config)
}

/// [`enumerate_parallel`] against caller-held chase plans (see
/// [`enumerate_sequential_prepared`]).
///
/// # Errors
/// Same as [`enumerate_sequential`].
pub fn enumerate_parallel_prepared(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    input: &Instance,
    config: ExactConfig,
) -> Result<PossibleWorlds, EngineError> {
    require_discrete(program)?;
    let mut worlds = PossibleWorlds::new();
    let mut stack: Vec<(Instance, f64, usize)> = vec![(input.clone(), 1.0, 0)];
    while let Some((instance, p, depth)) = stack.pop() {
        check_deadline(config.deadline)?;
        if p == 0.0 {
            continue;
        }
        let index = prepared.new_index(&instance);
        let app = prepared.applicable_pairs(program, &instance, &index);
        if app.is_empty() {
            worlds.add(instance, p);
            continue;
        }
        if depth >= config.max_depth || (config.min_path_prob > 0.0 && p < config.min_path_prob) {
            worlds.add_nontermination(p);
            continue;
        }
        let (children, truncated) = parallel_round(program, &instance, &app, config)?;
        worlds.add_truncation(p * truncated);
        for (d, q) in children {
            stack.push((d, p * q, depth + 1));
        }
    }
    Ok(worlds)
}

/// Expands one parallel round (all applicable pairs fire) into follow-up
/// instances with probabilities, plus truncated mass. `app` must be
/// `applicable_pairs(program, instance)` and non-empty.
pub(crate) fn parallel_round(
    program: &CompiledProgram,
    instance: &Instance,
    app: &[AppPair],
    config: ExactConfig,
) -> Result<(Vec<(Instance, f64)>, f64), EngineError> {
    // Accumulate follow-up instances as a product over pairs.
    let mut frontier: Vec<(Instance, f64)> = vec![(instance.clone(), 1.0)];
    let mut truncated_total = 0.0;
    let mut experiments_done: Vec<(gdatalog_data::RelId, Vec<Value>)> = Vec::new();
    for pair in app {
        match &program.rules[pair.rule].kind {
            RuleKind::Deterministic { .. } => {
                frontier = frontier
                    .into_iter()
                    .map(|(d, q)| (apply_branch(program, pair, &[], &d), q))
                    .collect();
            }
            RuleKind::Existential(e) => {
                let key = eval_terms(&e.key_terms, &pair.valuation);
                let exp_id = (e.aux_rel, key);
                if experiments_done.contains(&exp_id) {
                    continue; // shared experiment already sampled this round
                }
                experiments_done.push(exp_id);
                let (branches, truncated) =
                    existential_branches(program, pair, config.support_tol)?;
                // Truncated mass applies to every partial product.
                let partial_mass: f64 = frontier.iter().map(|(_, q)| q).sum();
                truncated_total += partial_mass * truncated;
                let mut next = Vec::with_capacity(frontier.len() * branches.len());
                for (d, q) in &frontier {
                    for (outcomes, b) in &branches {
                        next.push((apply_branch(program, pair, outcomes, d), q * b));
                    }
                }
                frontier = next;
            }
        }
    }
    Ok((frontier, truncated_total))
}

fn require_discrete(program: &CompiledProgram) -> Result<(), EngineError> {
    if program.all_discrete() {
        Ok(())
    } else {
        let name = program
            .rules
            .iter()
            .find_map(|r| match &r.kind {
                RuleKind::Existential(e) => e
                    .samples
                    .iter()
                    .find(|s| !s.dist.is_discrete())
                    .map(|s| s.dist.name().to_string()),
                RuleKind::Deterministic { .. } => None,
            })
            .unwrap_or_else(|| "<unknown>".to_string());
        Err(EngineError::NotDiscrete(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use gdatalog_data::Fact;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use std::sync::Arc;

    fn compile(src: &str, mode: SemanticsMode) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, mode).unwrap()
    }

    fn enumerate(prog: &CompiledProgram) -> PossibleWorlds {
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        enumerate_sequential(
            prog,
            &prog.initial_instance,
            &mut policy,
            ExactConfig::default(),
        )
        .unwrap()
        // Compare on the output schema.
        .map(|d| prog.project_output(d))
    }

    /// Example 1.1, program G0, our semantics: {R(1)}: 1/4, {R(0)}: 1/4,
    /// {R(0), R(1)}: 1/2.
    #[test]
    fn example_1_1_g0_new_semantics() {
        let prog = compile(
            "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
            SemanticsMode::Grohe,
        );
        let worlds = enumerate(&prog);
        assert!(worlds.mass_is_consistent(1e-12));
        let r = prog.catalog.require("R").unwrap();
        let one = Fact::new(r, gdatalog_data::tuple![1i64]);
        let zero = Fact::new(r, gdatalog_data::tuple![0i64]);
        let p_only_one =
            worlds.probability(|d| d.contains(r, &one.tuple) && !d.contains(r, &zero.tuple));
        let p_only_zero =
            worlds.probability(|d| d.contains(r, &zero.tuple) && !d.contains(r, &one.tuple));
        let p_both =
            worlds.probability(|d| d.contains(r, &zero.tuple) && d.contains(r, &one.tuple));
        assert!((p_only_one - 0.25).abs() < 1e-12, "{p_only_one}");
        assert!((p_only_zero - 0.25).abs() < 1e-12, "{p_only_zero}");
        assert!((p_both - 0.5).abs() < 1e-12, "{p_both}");
    }

    /// Example 1.1, program G0, Bárány semantics: {R(1)}: 1/2, {R(0)}: 1/2.
    #[test]
    fn example_1_1_g0_barany_semantics() {
        let prog = compile(
            "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
            SemanticsMode::Barany,
        );
        let worlds = enumerate(&prog);
        assert!(worlds.mass_is_consistent(1e-12));
        assert_eq!(worlds.len(), 2, "only the two singleton worlds");
        let r = prog.catalog.require("R").unwrap();
        let p_one = worlds.probability(|d| d.contains(r, &gdatalog_data::tuple![1i64]));
        assert!((p_one - 0.5).abs() < 1e-12);
    }

    /// Example 1.1, program G′0 (renamed distribution): under Bárány
    /// semantics the rename decorrelates the rules (4 outcomes), under ours
    /// it changes nothing vs. G0.
    #[test]
    fn example_1_1_g0_prime() {
        let src = "R(Flip<0.5>) :- true. R(Bernoulli<0.5>) :- true.";
        let grohe = enumerate(&compile(src, SemanticsMode::Grohe));
        assert_eq!(grohe.len(), 3);
        let barany = enumerate(&compile(src, SemanticsMode::Barany));
        assert_eq!(barany.len(), 3, "renaming decorrelates under Bárány");
        let p_both = barany.probability(|d| d.len() == 2);
        assert!((p_both - 0.5).abs() < 1e-12);
    }

    /// Sequential policies and the parallel chase agree exactly
    /// (Theorem 6.1).
    #[test]
    fn chase_independence_small() {
        let src = r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Trig(C, Flip<0.6>) :- Earthquake(C, 1).
            Alarm(C) :- Trig(C, 1).
        "#;
        let prog = compile(src, SemanticsMode::Grohe);
        let reference = enumerate(&prog);
        for kind in [
            PolicyKind::Reverse,
            PolicyKind::RoundRobin,
            PolicyKind::Random { seed: 11 },
            PolicyKind::DeterministicFirst,
        ] {
            let existential: Vec<usize> = prog
                .rules
                .iter()
                .filter(|r| r.is_existential())
                .map(|r| r.id)
                .collect();
            let mut policy = ChasePolicy::new(kind, &existential);
            let worlds = enumerate_sequential(
                &prog,
                &prog.initial_instance,
                &mut policy,
                ExactConfig::default(),
            )
            .unwrap()
            .map(|d| prog.project_output(d));
            assert!(
                reference.total_variation(&worlds) < 1e-12,
                "policy {kind:?} disagrees"
            );
        }
        let par = enumerate_parallel(&prog, &prog.initial_instance, ExactConfig::default())
            .unwrap()
            .map(|d| prog.project_output(d));
        assert!(
            reference.total_variation(&par) < 1e-12,
            "parallel disagrees"
        );
    }

    /// Truncation accounting: a Geometric support is infinite, the deficit
    /// must absorb exactly the truncated tail.
    #[test]
    fn truncation_deficit_tracked() {
        let prog = compile("N(Geometric<0.5>) :- true.", SemanticsMode::Grohe);
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        let cfg = ExactConfig {
            support_tol: 1e-4,
            ..ExactConfig::default()
        };
        let worlds = enumerate_sequential(&prog, &prog.initial_instance, &mut policy, cfg).unwrap();
        assert!(worlds.deficit().truncation > 0.0);
        assert!(worlds.deficit().truncation <= 1e-4 + 1e-9);
        assert!(worlds.mass_is_consistent(1e-9));
    }

    /// Non-termination deficit: the tagged geometric chain is not weakly
    /// acyclic; with a tiny depth budget some mass must be charged to
    /// non-termination, and the total mass must stay consistent.
    #[test]
    fn nontermination_deficit_tracked() {
        let prog = compile(
            r#"
            G(0).
            G(Geometric<0.5 | X>) :- G(X).
        "#,
            SemanticsMode::Grohe,
        );
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        let cfg = ExactConfig {
            max_depth: 6,
            support_tol: 1e-6,
            ..ExactConfig::default()
        };
        let worlds = enumerate_sequential(&prog, &prog.initial_instance, &mut policy, cfg).unwrap();
        assert!(worlds.deficit().nontermination > 0.0);
        assert!(worlds.mass_is_consistent(1e-6));
    }

    /// An already-elapsed deadline cancels enumeration cooperatively.
    #[test]
    fn elapsed_deadline_cancels_enumeration() {
        let prog = compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe);
        let cfg = ExactConfig {
            deadline: Some(std::time::Instant::now()),
            ..ExactConfig::default()
        };
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        let err =
            enumerate_sequential(&prog, &prog.initial_instance, &mut policy, cfg).unwrap_err();
        assert!(matches!(err, EngineError::DeadlineExceeded));
        let err = enumerate_parallel(&prog, &prog.initial_instance, cfg).unwrap_err();
        assert!(matches!(err, EngineError::DeadlineExceeded));
    }

    /// A generous deadline does not perturb results.
    #[test]
    fn future_deadline_is_inert() {
        let prog = compile("R(Flip<0.5>) :- true.", SemanticsMode::Grohe);
        let cfg = ExactConfig {
            deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
            ..ExactConfig::default()
        };
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        let worlds = enumerate_sequential(&prog, &prog.initial_instance, &mut policy, cfg).unwrap();
        assert_eq!(worlds.len(), 2);
    }

    /// Continuous programs are rejected with a helpful error.
    #[test]
    fn continuous_program_rejected() {
        let prog = compile("X(Normal<0.0, 1.0>) :- true.", SemanticsMode::Grohe);
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        let err = enumerate_sequential(
            &prog,
            &prog.initial_instance,
            &mut policy,
            ExactConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::NotDiscrete(name) if name == "Normal"));
    }

    /// Example 3.4-style network: exact marginal P(Alarm) matches the
    /// closed form 1 − (1 − p_eq·0.6)(1 − r·0.9).
    #[test]
    fn burglary_alarm_marginal_matches_closed_form() {
        let src = r#"
            rel City(symbol, real) input.
            rel House(symbol, symbol) input.
            City(gotham, 0.3).
            House(h1, gotham).
            Earthquake(C, Flip<0.1>) :- City(C, R).
            Unit(H, C) :- House(H, C).
            Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
            Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
            Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
            Alarm(X) :- Trig(X, 1).
        "#;
        let prog = compile(src, SemanticsMode::Grohe);
        let worlds = enumerate(&prog);
        assert!(worlds.mass_is_consistent(1e-9));
        let alarm = prog.catalog.require("Alarm").unwrap();
        let p = worlds.probability(|d| d.contains(alarm, &gdatalog_data::tuple!["h1"]));
        let expect = 1.0 - (1.0 - 0.1 * 0.6) * (1.0 - 0.3 * 0.9);
        assert!(
            (p - expect).abs() < 1e-9,
            "P(Alarm) = {p}, expected {expect}"
        );
    }
}
