//! The user-facing engine: parse → validate → translate → evaluate.

use std::fmt;
use std::sync::Arc;

use gdatalog_data::{DataError, Instance};
use gdatalog_dist::{DistError, Registry};
use gdatalog_lang::{
    parse_program, translate, validate, CompiledProgram, LangError, Program, SemanticsMode,
};
use gdatalog_pdb::{EmpiricalPdb, PossibleWorlds};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exact::{enumerate_parallel, enumerate_sequential, ExactConfig};
use crate::mc::{sample_pdb, McConfig};
use crate::policy::{ChasePolicy, PolicyKind};
use crate::sequential::{run_sequential, ChaseRun};

/// Errors from engine construction or evaluation.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// Language front-end error (syntax, validation, translation).
    Lang(LangError),
    /// Runtime distribution error (invalid parameters flowing from data).
    Dist(DistError),
    /// Data-model error.
    Data(DataError),
    /// Exact enumeration requested for a program using this continuous
    /// distribution.
    NotDiscrete(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lang(e) => write!(f, "language error: {e}"),
            EngineError::Dist(e) => write!(f, "distribution error: {e}"),
            EngineError::Data(e) => write!(f, "data error: {e}"),
            EngineError::NotDiscrete(d) => write!(
                f,
                "exact enumeration requires discrete distributions, found `{d}` \
                 (use Monte-Carlo sampling instead)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LangError> for EngineError {
    fn from(e: LangError) -> Self {
        EngineError::Lang(e)
    }
}
impl From<DistError> for EngineError {
    fn from(e: DistError) -> Self {
        EngineError::Dist(e)
    }
}
impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

/// A compiled, ready-to-run GDatalog program.
///
/// ```
/// use gdatalog_core::{Engine, ExactConfig};
/// use gdatalog_lang::SemanticsMode;
///
/// let engine = Engine::from_source(
///     "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
///     SemanticsMode::Grohe,
/// ).unwrap();
/// let worlds = engine.enumerate(None, ExactConfig::default()).unwrap();
/// // Example 1.1 of the paper: three worlds, probabilities 1/4, 1/4, 1/2.
/// assert_eq!(worlds.len(), 3);
/// ```
pub struct Engine {
    program: CompiledProgram,
}

impl Engine {
    /// Compiles program text under the given semantics, with the standard
    /// distribution family.
    ///
    /// # Errors
    /// Syntax/validation/translation errors.
    pub fn from_source(src: &str, mode: SemanticsMode) -> Result<Engine, EngineError> {
        Engine::from_source_with_registry(src, mode, Arc::new(Registry::standard()))
    }

    /// Compiles program text against a custom distribution family Ψ.
    ///
    /// # Errors
    /// Syntax/validation/translation errors.
    pub fn from_source_with_registry(
        src: &str,
        mode: SemanticsMode,
        registry: Arc<Registry>,
    ) -> Result<Engine, EngineError> {
        let ast = parse_program(src)?;
        Engine::from_ast(ast, mode, registry)
    }

    /// Compiles an already-parsed AST.
    ///
    /// # Errors
    /// Validation/translation errors.
    pub fn from_ast(
        ast: Program,
        mode: SemanticsMode,
        registry: Arc<Registry>,
    ) -> Result<Engine, EngineError> {
        let validated = validate(ast, registry)?;
        let program = translate(&validated, mode)?;
        Ok(Engine { program })
    }

    /// The compiled program (catalog, rules, analyses).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// Merges the program's own ground facts with extra input facts.
    fn full_input(&self, extra: Option<&Instance>) -> Instance {
        match extra {
            None => self.program.initial_instance.clone(),
            Some(d) => self.program.initial_instance.union(d),
        }
    }

    /// **Exact** evaluation: enumerates the chase tree of a discrete
    /// program and returns the world table over the *output schema*
    /// (auxiliary relations projected away, Remark 4.9).
    ///
    /// # Errors
    /// [`EngineError::NotDiscrete`] for continuous programs.
    pub fn enumerate(
        &self,
        input: Option<&Instance>,
        config: ExactConfig,
    ) -> Result<PossibleWorlds, EngineError> {
        let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
        let raw =
            enumerate_sequential(&self.program, &self.full_input(input), &mut policy, config)?;
        Ok(raw.map(|d| self.program.project_output(d)))
    }

    /// Exact evaluation without the output projection (auxiliary
    /// experiment relations retained).
    ///
    /// # Errors
    /// Same as [`Engine::enumerate`].
    pub fn enumerate_raw(
        &self,
        input: Option<&Instance>,
        policy_kind: PolicyKind,
        config: ExactConfig,
    ) -> Result<PossibleWorlds, EngineError> {
        let existential = self.existential_rule_ids();
        let mut policy = ChasePolicy::new(policy_kind, &existential);
        enumerate_sequential(&self.program, &self.full_input(input), &mut policy, config)
    }

    /// Exact evaluation via the **parallel** chase (Def. 5.2), projected to
    /// the output schema. By Theorem 6.1 the result equals
    /// [`Engine::enumerate`].
    ///
    /// # Errors
    /// Same as [`Engine::enumerate`].
    pub fn enumerate_parallel(
        &self,
        input: Option<&Instance>,
        config: ExactConfig,
    ) -> Result<PossibleWorlds, EngineError> {
        let raw = enumerate_parallel(&self.program, &self.full_input(input), config)?;
        Ok(raw.map(|d| self.program.project_output(d)))
    }

    /// **Monte-Carlo** evaluation: samples chase runs into an empirical
    /// SPDB estimate (works for continuous programs).
    ///
    /// # Errors
    /// Runtime distribution failures.
    pub fn sample(
        &self,
        input: Option<&Instance>,
        config: &McConfig,
    ) -> Result<EmpiricalPdb, EngineError> {
        sample_pdb(&self.program, &self.full_input(input), config)
    }

    /// Runs a single sequential chase (useful for traces and debugging).
    ///
    /// # Errors
    /// Runtime distribution failures.
    pub fn run_once(
        &self,
        input: Option<&Instance>,
        policy_kind: PolicyKind,
        seed: u64,
        max_steps: usize,
    ) -> Result<ChaseRun, EngineError> {
        let existential = self.existential_rule_ids();
        let mut policy = ChasePolicy::new(policy_kind, &existential);
        let mut rng = StdRng::seed_from_u64(seed);
        run_sequential(
            &self.program,
            &self.full_input(input),
            &mut policy,
            &mut rng,
            max_steps,
            true,
        )
        .map_err(EngineError::Dist)
    }

    /// Applies the program to a **probabilistic input** (Theorems 4.8, 5.5
    /// and 6.2): the output SPDB is the probability-weighted mixture of the
    /// outputs on each input world. Input worlds must range over the
    /// extensional relations.
    ///
    /// # Errors
    /// Same as [`Engine::enumerate`].
    pub fn transform_worlds(
        &self,
        input: &PossibleWorlds,
        config: ExactConfig,
    ) -> Result<PossibleWorlds, EngineError> {
        let mut parts = Vec::with_capacity(input.len());
        for (world, p) in input.iter() {
            parts.push((p, self.enumerate(Some(world), config)?));
        }
        let mut out = PossibleWorlds::mixture(parts);
        // Input deficit passes through unchanged.
        out.add_nontermination(input.deficit().nontermination);
        out.add_truncation(input.deficit().truncation);
        Ok(out)
    }

    fn existential_rule_ids(&self) -> Vec<usize> {
        self.program
            .rules
            .iter()
            .filter(|r| r.is_existential())
            .map(|r| r.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::{tuple, Fact};

    #[test]
    fn facade_round_trip() {
        let engine = Engine::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
        let worlds = engine.enumerate(None, ExactConfig::default()).unwrap();
        assert_eq!(worlds.len(), 2);
        let r = engine.program().catalog.require("R").unwrap();
        let p = worlds.marginal(&Fact::new(r, tuple![1i64]));
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_input_mixture() {
        // Input: City present with prob 0.5 (a simple tuple-independent
        // PDB); the output alarm probability is the mixture.
        let engine = Engine::from_source(
            r#"
            rel City(symbol) input.
            Quake(C, Flip<0.4>) :- City(C).
        "#,
            SemanticsMode::Grohe,
        )
        .unwrap();
        let city = engine.program().catalog.require("City").unwrap();
        let quake = engine.program().catalog.require("Quake").unwrap();
        let mut with_city = Instance::new();
        with_city.insert(city, tuple!["gotham"]);
        let mut input = PossibleWorlds::new();
        input.add(with_city, 0.5);
        input.add(Instance::new(), 0.5);
        let out = engine
            .transform_worlds(&input, ExactConfig::default())
            .unwrap();
        assert!(out.mass_is_consistent(1e-12));
        let p = out.marginal(&Fact::new(quake, tuple!["gotham", 1i64]));
        assert!((p - 0.5 * 0.4).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn run_once_produces_trace() {
        let engine =
            Engine::from_source("R(Flip<0.5>) :- true. S(X) :- R(X).", SemanticsMode::Grohe)
                .unwrap();
        let run = engine
            .run_once(None, PolicyKind::Canonical, 11, 100)
            .unwrap();
        assert_eq!(run.trace.len(), run.steps);
        assert!(run.steps >= 3, "sample, deliver, copy");
    }

    #[test]
    fn parse_errors_surface() {
        assert!(Engine::from_source("R(X :-", SemanticsMode::Grohe).is_err());
        assert!(Engine::from_source("R(Zorp<1.0>) :- true.", SemanticsMode::Grohe).is_err());
    }
}
