//! The user-facing engine: parse → validate → translate → evaluate.
//!
//! Evaluation goes through the builder-style [`Evaluation`] surface
//! ([`Engine::eval`] / [`Engine::eval_on`], or a [`Session`] for a
//! persistent extensional database). The pre-session method-per-strategy
//! entry points (`enumerate`, `sample`, …) were deprecated in 0.1.0 and
//! removed in 0.2.0; `docs/API.md` keeps the migration table.

use std::borrow::Cow;
use std::fmt;
use std::sync::{Arc, OnceLock};

use gdatalog_data::{DataError, Instance};
use gdatalog_dist::{DistError, Registry};
use gdatalog_lang::{
    parse_program, translate, validate, CompiledProgram, LangError, Program, SemanticsMode,
};

use crate::applicability::PreparedProgram;
use crate::session::Evaluation;
#[cfg(doc)]
use crate::session::Session;

/// Errors from engine construction or evaluation.
#[derive(Debug, Clone)]
pub enum EngineError {
    /// Language front-end error (syntax, validation, translation).
    Lang(LangError),
    /// Runtime distribution error (invalid parameters flowing from data).
    Dist(DistError),
    /// Data-model error.
    Data(DataError),
    /// Exact enumeration requested for a program using this continuous
    /// distribution.
    NotDiscrete(String),
    /// An evaluation request that contradicts the selected backend (e.g.
    /// materializing Monte-Carlo samples from an exact enumeration).
    InvalidRequest(String),
    /// Conditioning left no probability mass: every enumerated world (or
    /// every Monte-Carlo run) was rejected by the evidence, so the
    /// conditional distribution is undefined.
    ZeroEvidence,
    /// A cooperative deadline elapsed before evaluation finished. The
    /// chase loops check the deadline between enumeration nodes and
    /// between Monte-Carlo runs, so cancellation lands within one bounded
    /// unit of work of the deadline.
    DeadlineExceeded,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Lang(e) => write!(f, "language error: {e}"),
            EngineError::Dist(e) => write!(f, "distribution error: {e}"),
            EngineError::Data(e) => write!(f, "data error: {e}"),
            EngineError::NotDiscrete(d) => write!(
                f,
                "exact enumeration requires discrete distributions, found `{d}` \
                 (use Monte-Carlo sampling instead)"
            ),
            EngineError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            EngineError::ZeroEvidence => write!(
                f,
                "conditioning rejected all probability mass (the evidence has \
                 probability ≈ 0 under this program — for Monte-Carlo, consider \
                 more runs or soft observations)"
            ),
            EngineError::DeadlineExceeded => write!(
                f,
                "evaluation deadline exceeded (the request was cancelled \
                 cooperatively before the chase finished)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<LangError> for EngineError {
    fn from(e: LangError) -> Self {
        EngineError::Lang(e)
    }
}
impl From<DistError> for EngineError {
    fn from(e: DistError) -> Self {
        EngineError::Dist(e)
    }
}
impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}

/// A compiled, ready-to-run GDatalog program.
///
/// The compiled program and its chase plans live behind [`Arc`]s, so
/// cloning an `Engine` is cheap and every clone shares the same
/// allocations — that is what lets a session pool hold many warm
/// [`Session`]s over one compiled model.
///
/// ```
/// use gdatalog_core::Engine;
/// use gdatalog_lang::SemanticsMode;
///
/// let engine = Engine::from_source(
///     "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
///     SemanticsMode::Grohe,
/// ).unwrap();
/// let worlds = engine.eval().worlds().unwrap();
/// // Example 1.1 of the paper: three worlds, probabilities 1/4, 1/4, 1/2.
/// assert_eq!(worlds.len(), 3);
///
/// // Clones share the compiled program (pointer-identical).
/// let clone = engine.clone();
/// assert!(std::sync::Arc::ptr_eq(engine.program_shared(), clone.program_shared()));
/// ```
#[derive(Clone)]
pub struct Engine {
    program: Arc<CompiledProgram>,
    /// The chase plans (body plans + interned index specs), built on first
    /// use. The cell itself is shared, so whichever clone plans first
    /// plans for all of them — a pooled session never re-plans,
    /// regardless of whether cloning happened before or after the first
    /// evaluation.
    prepared: Arc<OnceLock<Arc<PreparedProgram>>>,
}

impl Engine {
    /// Compiles program text under the given semantics, with the standard
    /// distribution family.
    ///
    /// # Errors
    /// Syntax/validation/translation errors.
    pub fn from_source(src: &str, mode: SemanticsMode) -> Result<Engine, EngineError> {
        Engine::from_source_with_registry(src, mode, Arc::new(Registry::standard()))
    }

    /// Compiles program text against a custom distribution family Ψ.
    ///
    /// # Errors
    /// Syntax/validation/translation errors.
    pub fn from_source_with_registry(
        src: &str,
        mode: SemanticsMode,
        registry: Arc<Registry>,
    ) -> Result<Engine, EngineError> {
        let ast = parse_program(src)?;
        Engine::from_ast(ast, mode, registry)
    }

    /// Compiles an already-parsed AST.
    ///
    /// # Errors
    /// Validation/translation errors.
    pub fn from_ast(
        ast: Program,
        mode: SemanticsMode,
        registry: Arc<Registry>,
    ) -> Result<Engine, EngineError> {
        let validated = validate(ast, registry)?;
        let program = translate(&validated, mode)?;
        Ok(Engine::from_compiled(Arc::new(program)))
    }

    /// Wraps an already-compiled (possibly shared) program.
    pub fn from_compiled(program: Arc<CompiledProgram>) -> Engine {
        Engine {
            program,
            prepared: Arc::new(OnceLock::new()),
        }
    }

    /// The compiled program (catalog, rules, analyses).
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The compiled program behind its shared handle (cheap to clone;
    /// pointer-identity is the cache-hit witness of the serving layer).
    pub fn program_shared(&self) -> &Arc<CompiledProgram> {
        &self.program
    }

    /// The chase plans of the program — body plans and the unified index
    /// spec table — built on first use and shared by every clone of this
    /// engine. Backends receive it through the evaluation surface, so a
    /// cached program plans **once** across any number of requests.
    pub fn prepared(&self) -> &Arc<PreparedProgram> {
        self.prepared
            .get_or_init(|| Arc::new(PreparedProgram::new(&self.program)))
    }

    /// Merges the program's own ground facts with extra input facts,
    /// borrowing when there is nothing to merge.
    fn full_input(&self, extra: Option<&Instance>) -> Cow<'_, Instance> {
        match extra {
            None => Cow::Borrowed(&self.program.initial_instance),
            Some(d) if d.is_empty() => Cow::Borrowed(&self.program.initial_instance),
            Some(d) => Cow::Owned(self.program.initial_instance.union(d)),
        }
    }

    /// Starts a builder-style [`Evaluation`] over the program's own ground
    /// facts. For a persistent, incrementally extendable fact store, use a
    /// [`Session`].
    ///
    /// ```
    /// use gdatalog_core::Engine;
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let engine = Engine::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
    /// let worlds = engine.eval().exact().worlds().unwrap();
    /// assert_eq!(worlds.len(), 2);
    /// ```
    pub fn eval(&self) -> Evaluation<'_> {
        Evaluation::new(&self.program, Cow::Borrowed(&self.program.initial_instance))
            .shared_plans(Arc::clone(self.prepared()))
    }

    /// Starts an [`Evaluation`] over the program's ground facts unioned
    /// with `extra` input facts (borrowing when `extra` is `None`).
    ///
    /// ```
    /// use gdatalog_core::Engine;
    /// use gdatalog_data::{tuple, Instance};
    /// use gdatalog_lang::SemanticsMode;
    ///
    /// let engine = Engine::from_source(
    ///     "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
    ///     SemanticsMode::Grohe,
    /// ).unwrap();
    /// let city = engine.program().catalog.require("City").unwrap();
    /// let mut extra = Instance::new();
    /// extra.insert(city, tuple!["gotham"]);
    /// let worlds = engine.eval_on(Some(&extra)).worlds().unwrap();
    /// assert_eq!(worlds.len(), 2);
    /// ```
    pub fn eval_on<'a>(&'a self, extra: Option<&Instance>) -> Evaluation<'a> {
        Evaluation::new(&self.program, self.full_input(extra))
            .shared_plans(Arc::clone(self.prepared()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::{tuple, Fact};
    use gdatalog_pdb::PossibleWorlds;

    #[test]
    fn facade_round_trip() {
        let engine = Engine::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
        let worlds = engine.eval().worlds().unwrap();
        assert_eq!(worlds.len(), 2);
        let r = engine.program().catalog.require("R").unwrap();
        let p = worlds.marginal(&Fact::new(r, tuple![1i64]));
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    fn probabilistic_input_mixture() {
        // Input: City present with prob 0.5 (a simple tuple-independent
        // PDB); the output alarm probability is the mixture.
        let engine = Engine::from_source(
            r#"
            rel City(symbol) input.
            Quake(C, Flip<0.4>) :- City(C).
        "#,
            SemanticsMode::Grohe,
        )
        .unwrap();
        let city = engine.program().catalog.require("City").unwrap();
        let quake = engine.program().catalog.require("Quake").unwrap();
        let mut with_city = Instance::new();
        with_city.insert(city, tuple!["gotham"]);
        let mut input = PossibleWorlds::new();
        input.add(with_city, 0.5);
        input.add(Instance::new(), 0.5);
        let out = engine.eval().transform(&input).unwrap();
        assert!(out.mass_is_consistent(1e-12));
        let p = out.marginal(&Fact::new(quake, tuple!["gotham", 1i64]));
        assert!((p - 0.5 * 0.4).abs() < 1e-12, "p = {p}");
    }

    #[test]
    fn run_once_produces_trace() {
        let engine =
            Engine::from_source("R(Flip<0.5>) :- true. S(X) :- R(X).", SemanticsMode::Grohe)
                .unwrap();
        let run = engine.eval().seed(11).max_depth(100).trace().unwrap();
        assert_eq!(run.trace.len(), run.steps);
        assert!(run.steps >= 3, "sample, deliver, copy");
    }

    #[test]
    fn clones_share_plans_even_when_cloned_before_planning() {
        let engine = Engine::from_source("R(Flip<0.5>) :- true.", SemanticsMode::Grohe).unwrap();
        let clone = engine.clone();
        // Neither has planned yet; whichever plans first plans for both.
        assert!(Arc::ptr_eq(engine.prepared(), clone.prepared()));
        assert!(Arc::ptr_eq(clone.prepared(), engine.clone().prepared()));
    }

    #[test]
    fn parse_errors_surface() {
        assert!(Engine::from_source("R(X :-", SemanticsMode::Grohe).is_err());
        assert!(Engine::from_source("R(Zorp<1.0>) :- true.", SemanticsMode::Grohe).is_err());
    }
}
