//! First-class queries: many statistics, one backend pass.
//!
//! The paper's probabilistic-database semantics defines *many* statistics
//! over one distribution ⟦P⟧ — marginals, event probabilities, aggregate
//! moments (Fact 2.6) — and a serving client typically asks several of
//! them about the same program and input. This module makes queries
//! **data**: a [`QueryIr`] names one statistic, a [`QuerySet`] is an
//! ordered bundle of them validated once against the program schema, and
//! [`Evaluation::answer`](crate::Evaluation::answer) drives **one**
//! backend pass whose world stream is fanned out to every query's sink
//! through a [`gdatalog_pdb::MultiplexSink`] — so a K-statistics request
//! costs one chase/enumeration/Monte-Carlo pass instead of K.
//!
//! Every single-query terminal of [`Evaluation`](crate::Evaluation) is
//! sugar over this surface, which keeps the two bit-identical by
//! construction.
//!
//! ```
//! use gdatalog_core::{Answer, QuerySet, Session};
//! use gdatalog_data::{tuple, Fact};
//! use gdatalog_lang::SemanticsMode;
//! use gdatalog_pdb::AggFun;
//!
//! let s = Session::from_source(
//!     "R(Flip<0.25>) :- true. S(X) :- R(X).",
//!     SemanticsMode::Grohe,
//! ).unwrap();
//! let r = s.program().catalog.require("R").unwrap();
//! let queries = QuerySet::new()
//!     .marginal(&Fact::new(r, tuple![1i64]))
//!     .marginals(r)
//!     .expectation(&gdatalog_pdb::Query::Rel(r), AggFun::Sum);
//! let answers = s.eval().answer(&queries).unwrap();   // one pass, 3 answers
//! assert_eq!(answers.len(), 3);
//! assert_eq!(answers[0], Answer::Marginal(0.25));
//! ```

use std::ops::Index;

use gdatalog_data::{Fact, RelId};
use gdatalog_lang::CompiledProgram;
use gdatalog_pdb::{
    AggFun, ColPred, ColumnHistogram, CountOp, Event, EventProbabilitySink, FactSet, HistogramSink,
    MarginalSink, Moments, MomentsSink, QuantileSink, Query, RelationMarginalsSink, WorldSink,
};

use crate::engine::EngineError;
use crate::session::EvidenceSummary;

/// One statistic over the denoted distribution, as **data**: the query IR
/// compiled by [`QuerySet::validate`] and answered by
/// [`Evaluation::answer`](crate::Evaluation::answer). Each kind mirrors a
/// single-query terminal; [`Quantile`](QueryIr::Quantile) and
/// [`Tail`](QueryIr::Tail) are additionally available as terminals
/// [`quantile`](crate::Evaluation::quantile) and
/// [`tail_probability`](crate::Evaluation::tail_probability).
#[derive(Debug, Clone, PartialEq)]
pub enum QueryIr {
    /// `P(fact ∈ D)` of one fact.
    Marginal {
        /// The fact.
        fact: Fact,
    },
    /// The marginal of every tuple of `rel` occurring in some world.
    Marginals {
        /// The relation.
        rel: RelId,
    },
    /// The probability of a measurable [`Event`] (§2.3 of the paper).
    Probability {
        /// The event.
        event: Event,
    },
    /// Mean/variance of an aggregate of a [`Query`]'s answers per world.
    Expectation {
        /// The relational-algebra query.
        query: Query,
        /// Aggregate applied to the last column of the answers.
        agg: AggFun,
    },
    /// Probability-weighted fixed-bin histogram of a numeric column.
    Histogram {
        /// The relation.
        rel: RelId,
        /// Column index.
        col: usize,
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
        /// Number of equal-width bins.
        bins: usize,
    },
    /// Weighted `q`-quantile of the values at a numeric column: the
    /// smallest value whose cumulative world-weighted mass reaches `q`
    /// of the total observed value mass.
    Quantile {
        /// The relation.
        rel: RelId,
        /// Column index.
        col: usize,
        /// The quantile, in `[0, 1]`.
        q: f64,
    },
    /// Tail probability: `P(some fact of rel has column value ≥ threshold)`
    /// — sugar over a counting event with a half-open
    /// [`ColPred::Range`].
    Tail {
        /// The relation.
        rel: RelId,
        /// Column index.
        col: usize,
        /// Inclusive threshold.
        threshold: f64,
    },
}

impl QueryIr {
    /// The kind name (for diagnostics and wire rendering).
    pub fn kind(&self) -> &'static str {
        match self {
            QueryIr::Marginal { .. } => "marginal",
            QueryIr::Marginals { .. } => "marginals",
            QueryIr::Probability { .. } => "probability",
            QueryIr::Expectation { .. } => "expectation",
            QueryIr::Histogram { .. } => "histogram",
            QueryIr::Quantile { .. } => "quantile",
            QueryIr::Tail { .. } => "tail",
        }
    }

    /// Checks the query against the program schema: relations must exist,
    /// column indices must be within arity, histogram bounds must be
    /// finite with `lo < hi` and `bins > 0`, quantiles must lie in
    /// `[0, 1]`. Returning an error here (instead of panicking in a sink
    /// constructor mid-pass) is what makes a `QuerySet` safe to build
    /// from untrusted wire input.
    fn validate(&self, program: &CompiledProgram) -> Result<(), EngineError> {
        let bad = |msg: String| Err(EngineError::InvalidRequest(msg));
        let check_rel = |rel: RelId| -> Result<(), EngineError> {
            if rel.index() >= program.catalog.len() {
                return Err(EngineError::InvalidRequest(format!(
                    "{}: relation id {} out of range (catalog has {} relations)",
                    self.kind(),
                    rel.index(),
                    program.catalog.len()
                )));
            }
            Ok(())
        };
        let check_col = |rel: RelId, col: usize| -> Result<(), EngineError> {
            check_rel(rel)?;
            let arity = program.catalog.decl(rel).arity();
            if col >= arity {
                return Err(EngineError::InvalidRequest(format!(
                    "{}: column {col} out of range for {} (arity {arity})",
                    self.kind(),
                    program.catalog.name(rel)
                )));
            }
            Ok(())
        };
        match self {
            QueryIr::Marginal { fact } => check_rel(fact.rel),
            QueryIr::Marginals { rel } => check_rel(*rel),
            // Events carry resolved relation ids but no column arithmetic;
            // nothing further to check statically.
            QueryIr::Probability { .. } => Ok(()),
            // A relational-algebra tree indexes tuples by column in
            // Select/Project/Join/Aggregate; walk it so an out-of-arity
            // column is InvalidRequest here, not an index panic mid-pass.
            QueryIr::Expectation { query, .. } => query_arity(query, program).map(|_| ()),
            QueryIr::Histogram {
                rel,
                col,
                lo,
                hi,
                bins,
            } => {
                check_col(*rel, *col)?;
                if !lo.is_finite() || !hi.is_finite() || lo >= hi || *bins == 0 {
                    return bad(format!(
                        "histogram: need finite lo < hi and bins > 0 \
                         (got lo {lo}, hi {hi}, bins {bins})"
                    ));
                }
                Ok(())
            }
            QueryIr::Quantile { rel, col, q } => {
                check_col(*rel, *col)?;
                if !(0.0..=1.0).contains(q) {
                    return bad(format!("quantile: need q in [0, 1], got {q}"));
                }
                Ok(())
            }
            QueryIr::Tail {
                rel,
                col,
                threshold,
            } => {
                check_col(*rel, *col)?;
                if threshold.is_nan() {
                    return bad("tail: threshold must not be NaN".to_string());
                }
                Ok(())
            }
        }
    }

    /// The fresh sink answering this query (validated queries only).
    fn sink(&self) -> Box<dyn WorldSink> {
        match self {
            QueryIr::Marginal { fact } => Box::new(MarginalSink::new(fact.clone())),
            QueryIr::Marginals { rel } => Box::new(RelationMarginalsSink::new(*rel)),
            QueryIr::Probability { event } => Box::new(EventProbabilitySink::new(event.clone())),
            QueryIr::Expectation { query, agg } => {
                Box::new(MomentsSink::new(query.clone(), *agg, 0.0))
            }
            QueryIr::Histogram {
                rel,
                col,
                lo,
                hi,
                bins,
            } => Box::new(HistogramSink::new(*rel, *col, *lo, *hi, *bins)),
            QueryIr::Quantile { rel, col, q } => Box::new(QuantileSink::new(*rel, *col, *q)),
            QueryIr::Tail {
                rel,
                col,
                threshold,
            } => Box::new(EventProbabilitySink::new(tail_event(
                *rel, *col, *threshold,
            ))),
        }
    }

    /// Folds the finished sink back into a typed [`Answer`], normalizing
    /// by `norm` (the observed evidence mass) under conditioning —
    /// reproducing each single-query terminal's arithmetic exactly.
    fn finish(&self, sink: Box<dyn WorldSink>, norm: Option<f64>) -> Answer {
        let sink = sink.into_any();
        match self {
            QueryIr::Marginal { .. } => {
                let p = sink
                    .downcast::<MarginalSink>()
                    .expect("marginal sink")
                    .finish();
                Answer::Marginal(match norm {
                    Some(total) => p / total,
                    None => p,
                })
            }
            QueryIr::Marginals { .. } => {
                let rows = sink
                    .downcast::<RelationMarginalsSink>()
                    .expect("marginals sink")
                    .finish();
                Answer::Marginals(match norm {
                    Some(total) => rows
                        .into_iter()
                        .map(|(fact, p)| (fact, p / total))
                        .collect(),
                    None => rows,
                })
            }
            QueryIr::Probability { .. } => {
                let p = sink
                    .downcast::<EventProbabilitySink>()
                    .expect("probability sink")
                    .finish();
                Answer::Probability(match norm {
                    Some(total) => p / total,
                    None => p,
                })
            }
            // The moments sink self-normalizes by its observed mass, so no
            // extra correction applies under conditioning (the terminal
            // behaves identically).
            QueryIr::Expectation { .. } => Answer::Expectation(
                sink.downcast::<MomentsSink>()
                    .expect("expectation sink")
                    .finish(),
            ),
            QueryIr::Histogram { .. } => {
                let mut hist = sink
                    .downcast::<HistogramSink>()
                    .expect("histogram sink")
                    .finish();
                if let Some(total) = norm {
                    for bin in &mut hist.bins {
                        *bin /= total;
                    }
                    hist.underflow /= total;
                    hist.overflow /= total;
                    hist.nan /= total;
                    hist.mass /= total;
                }
                Answer::Histogram(hist)
            }
            // Quantiles are invariant under rescaling the weights, so the
            // conditioned and unconditioned readings coincide.
            QueryIr::Quantile { .. } => Answer::Quantile(
                sink.downcast::<QuantileSink>()
                    .expect("quantile sink")
                    .finish(),
            ),
            QueryIr::Tail { .. } => {
                let p = sink
                    .downcast::<EventProbabilitySink>()
                    .expect("tail sink")
                    .finish();
                Answer::Tail(match norm {
                    Some(total) => p / total,
                    None => p,
                })
            }
        }
    }
}

/// Computes the output arity of a relational-algebra tree, checking every
/// column index the evaluator would use to index a tuple — the static
/// half of the untrusted-input contract of [`QuerySet::validate`]:
/// [`gdatalog_pdb::eval_query`] indexes tuples directly (Select
/// predicates, Project/Aggregate columns, Join keys), so an out-of-range
/// column must be rejected here rather than panic mid-pass.
fn query_arity(query: &Query, program: &CompiledProgram) -> Result<usize, EngineError> {
    let bad = |msg: String| Err(EngineError::InvalidRequest(msg));
    let check_cols = |what: &str, cols: &[usize], arity: usize| -> Result<(), EngineError> {
        match cols.iter().find(|&&c| c >= arity) {
            Some(c) => Err(EngineError::InvalidRequest(format!(
                "expectation: {what} column {c} out of range (input arity {arity})"
            ))),
            None => Ok(()),
        }
    };
    match query {
        Query::Rel(rel) => {
            if rel.index() >= program.catalog.len() {
                return bad(format!(
                    "expectation: relation id {} out of range (catalog has {} relations)",
                    rel.index(),
                    program.catalog.len()
                ));
            }
            Ok(program.catalog.decl(*rel).arity())
        }
        Query::Select { input, preds } => {
            let arity = query_arity(input, program)?;
            let cols: Vec<usize> = preds.iter().map(|(c, _)| *c).collect();
            check_cols("selection", &cols, arity)?;
            Ok(arity)
        }
        Query::Project { input, cols } => {
            let arity = query_arity(input, program)?;
            check_cols("projection", cols, arity)?;
            Ok(cols.len())
        }
        Query::Join { left, right, on } => {
            let l = query_arity(left, program)?;
            let r = query_arity(right, program)?;
            let lcols: Vec<usize> = on.iter().map(|(lc, _)| *lc).collect();
            let rcols: Vec<usize> = on.iter().map(|(_, rc)| *rc).collect();
            check_cols("left join", &lcols, l)?;
            check_cols("right join", &rcols, r)?;
            Ok(l + r)
        }
        // Union/Diff compare whole tuples without indexing; arity
        // mismatches between the sides are legal (if unusual) inputs to
        // the evaluator, so only the subtrees are checked.
        Query::Union(a, b) | Query::Diff(a, b) => {
            let arity = query_arity(a, program)?;
            query_arity(b, program)?;
            Ok(arity)
        }
        Query::Aggregate {
            input,
            group_by,
            agg,
            col,
        } => {
            let arity = query_arity(input, program)?;
            check_cols("group-by", group_by, arity)?;
            // Count never indexes the aggregated column.
            if *agg != AggFun::Count {
                check_cols("aggregate", &[*col], arity)?;
            }
            Ok(group_by.len() + 1)
        }
    }
}

/// The counting event behind [`QueryIr::Tail`]: at least one fact of
/// `rel` whose column `col` carries a numeric value in `[threshold, ∞]`.
///
/// [`ColPred::Range`] is half-open (`lo ≤ x < hi`), so `hi = ∞` alone
/// would exclude a column value of exactly `+∞` — representable in this
/// engine's value domain — and the tail would disagree with
/// [`QuantileSink`] on the same data. The
/// event therefore disjoins an explicit `+∞` equality clause.
pub fn tail_event(rel: RelId, col: usize, threshold: f64) -> Event {
    let at_least_one = |pred: ColPred| {
        let mut cols = vec![ColPred::Any; col];
        cols.push(pred);
        Event::Count {
            set: FactSet { rel, cols },
            op: CountOp::AtLeast,
            n: 1,
        }
    };
    at_least_one(ColPred::Range {
        lo: threshold,
        hi: f64::INFINITY,
    })
    .or(at_least_one(ColPred::Eq(gdatalog_data::Value::real(
        f64::INFINITY,
    ))))
}

/// An ordered bundle of [`QueryIr`] queries, answered together by
/// [`Evaluation::answer`](crate::Evaluation::answer) in a **single**
/// backend pass. Order is preserved: answer `i` of the returned
/// [`Answers`] belongs to query `i`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuerySet {
    queries: Vec<QueryIr>,
}

impl QuerySet {
    /// An empty set (answering it still runs one pass and reports the
    /// [`EvidenceSummary`] — the diagnostics-only request).
    pub fn new() -> QuerySet {
        QuerySet::default()
    }

    /// Appends a query; returns its index (= its answer's position).
    pub fn push(&mut self, query: QueryIr) -> usize {
        self.queries.push(query);
        self.queries.len() - 1
    }

    /// Appends a marginal query for `fact` (chainable).
    pub fn marginal(mut self, fact: &Fact) -> QuerySet {
        self.push(QueryIr::Marginal { fact: fact.clone() });
        self
    }

    /// Appends an all-fact-marginals query for `rel` (chainable).
    pub fn marginals(mut self, rel: RelId) -> QuerySet {
        self.push(QueryIr::Marginals { rel });
        self
    }

    /// Appends an event-probability query (chainable).
    pub fn probability(mut self, event: &Event) -> QuerySet {
        self.push(QueryIr::Probability {
            event: event.clone(),
        });
        self
    }

    /// Appends an aggregate-moments query (chainable).
    pub fn expectation(mut self, query: &Query, agg: AggFun) -> QuerySet {
        self.push(QueryIr::Expectation {
            query: query.clone(),
            agg,
        });
        self
    }

    /// Appends a histogram query (chainable).
    pub fn histogram(mut self, rel: RelId, col: usize, lo: f64, hi: f64, bins: usize) -> QuerySet {
        self.push(QueryIr::Histogram {
            rel,
            col,
            lo,
            hi,
            bins,
        });
        self
    }

    /// Appends a quantile query (chainable).
    pub fn quantile(mut self, rel: RelId, col: usize, q: f64) -> QuerySet {
        self.push(QueryIr::Quantile { rel, col, q });
        self
    }

    /// Appends a tail-probability query (chainable).
    pub fn tail(mut self, rel: RelId, col: usize, threshold: f64) -> QuerySet {
        self.push(QueryIr::Tail {
            rel,
            col,
            threshold,
        });
        self
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the set holds no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries, in answer order.
    pub fn queries(&self) -> &[QueryIr] {
        &self.queries
    }

    /// Checks every query against the program schema — the compile step
    /// run once per [`answer`](crate::Evaluation::answer) call, before
    /// any backend work.
    ///
    /// # Errors
    /// [`EngineError::InvalidRequest`] naming the offending query.
    pub fn validate(&self, program: &CompiledProgram) -> Result<(), EngineError> {
        for query in &self.queries {
            query.validate(program)?;
        }
        Ok(())
    }

    /// One fresh sink per query, in query order.
    pub(crate) fn sinks(&self) -> Vec<Box<dyn WorldSink>> {
        self.queries.iter().map(QueryIr::sink).collect()
    }

    /// Folds the finished sinks back into typed answers, in query order.
    pub(crate) fn finish(&self, sinks: Vec<Box<dyn WorldSink>>, norm: Option<f64>) -> Vec<Answer> {
        debug_assert_eq!(self.queries.len(), sinks.len());
        self.queries
            .iter()
            .zip(sinks)
            .map(|(query, sink)| query.finish(sink, norm))
            .collect()
    }
}

impl FromIterator<QueryIr> for QuerySet {
    fn from_iter<I: IntoIterator<Item = QueryIr>>(iter: I) -> QuerySet {
        QuerySet {
            queries: iter.into_iter().collect(),
        }
    }
}

impl Extend<QueryIr> for QuerySet {
    fn extend<I: IntoIterator<Item = QueryIr>>(&mut self, iter: I) {
        self.queries.extend(iter);
    }
}

/// The typed answer to one [`QueryIr`], in the same position as its query.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// A marginal probability.
    Marginal(f64),
    /// All fact marginals of a relation, sorted by tuple.
    Marginals(Vec<(Fact, f64)>),
    /// An event probability.
    Probability(f64),
    /// Moments of an aggregate (`None` when no world mass was observed).
    Expectation(Option<Moments>),
    /// A column histogram.
    Histogram(ColumnHistogram),
    /// A weighted quantile (`None` when no value mass was observed).
    Quantile(Option<f64>),
    /// A tail probability.
    Tail(f64),
}

impl Answer {
    /// The scalar probability carried by `Marginal` / `Probability` /
    /// `Tail` answers.
    pub fn as_probability(&self) -> Option<f64> {
        match self {
            Answer::Marginal(p) | Answer::Probability(p) | Answer::Tail(p) => Some(*p),
            _ => None,
        }
    }
}

/// The query-order-preserving result bundle of
/// [`Evaluation::answer`](crate::Evaluation::answer): one [`Answer`] per
/// query, plus the pass's [`EvidenceSummary`] (the weight statistics the
/// shared normalizer accumulated — computed **once** for the whole set).
#[derive(Debug, Clone, PartialEq)]
pub struct Answers {
    answers: Vec<Answer>,
    evidence: EvidenceSummary,
    conditioned: bool,
}

impl Answers {
    pub(crate) fn new(answers: Vec<Answer>, evidence: EvidenceSummary, conditioned: bool) -> Self {
        Answers {
            answers,
            evidence,
            conditioned,
        }
    }

    /// Number of answers (= number of queries asked).
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// Whether the bundle is empty.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// The answer at query position `i`.
    pub fn get(&self, i: usize) -> Option<&Answer> {
        self.answers.get(i)
    }

    /// Iterates the answers in query order.
    pub fn iter(&self) -> std::slice::Iter<'_, Answer> {
        self.answers.iter()
    }

    /// The evidence summary of the shared pass: observed mass, effective
    /// sample size, world count. Under conditioning this is the
    /// normalizing constant every answer was divided by; unconditioned it
    /// reports the observed world mass (mirroring
    /// [`Evaluation::evidence`](crate::Evaluation::evidence)).
    pub fn evidence(&self) -> EvidenceSummary {
        self.evidence
    }

    /// Whether the pass was conditioned (program `@observe` clauses or
    /// per-request `given` evidence).
    pub fn conditioned(&self) -> bool {
        self.conditioned
    }

    /// The answers, in query order.
    pub fn into_vec(self) -> Vec<Answer> {
        self.answers
    }
}

impl Index<usize> for Answers {
    type Output = Answer;
    fn index(&self, i: usize) -> &Answer {
        &self.answers[i]
    }
}

impl IntoIterator for Answers {
    type Item = Answer;
    type IntoIter = std::vec::IntoIter<Answer>;
    fn into_iter(self) -> Self::IntoIter {
        self.answers.into_iter()
    }
}

impl<'a> IntoIterator for &'a Answers {
    type Item = &'a Answer;
    type IntoIter = std::slice::Iter<'a, Answer>;
    fn into_iter(self) -> Self::IntoIter {
        self.answers.iter()
    }
}
