//! Single-site Metropolis-Hastings over chase **traces** — posterior
//! inference that stays effective where likelihood weighting collapses.
//!
//! Likelihood-weighted sampling (the [`McBackend`](crate::McBackend)
//! conditioned path) draws whole worlds from the *prior* and re-weights
//! them, so sharp or many-observation evidence drives its effective
//! sample size toward 1: almost every run lands far from the posterior
//! mode and carries negligible weight. [`MhBackend`] instead walks a
//! Markov chain whose stationary distribution *is* the posterior,
//! following the "lightweight" trace-MCMC recipe of the probabilistic
//! programming literature (and the PPDL line of declarative statistical
//! modeling): a **trace** records every Ψ-sample drawn along a chase run,
//! keyed by a structural address; a proposal redraws one uniformly chosen
//! site and deterministically **replays** the chase, reusing every other
//! recorded draw; the standard Metropolis-Hastings ratio — built from the
//! per-world log-likelihood of [`crate::observe`] and the prior
//! log-densities of reused draws under their (possibly changed)
//! parameters — decides acceptance.
//!
//! ## Site addresses and replay
//!
//! A site is one firing of an existential rule, addressed by
//! `(rule id, evaluated key terms)`. The induced functional dependency of
//! §3.5 (sample-once) guarantees the address fires at most once per run,
//! so the address is unique within a trace and **stable across traces**:
//! replays under the canonical chase policy visit the same addresses in
//! the same structural positions whenever the surrounding discrete
//! choices agree, which is exactly when draw reuse is meaningful. Theorem
//! 6.1 makes the policy pin harmless — the denoted distribution does not
//! depend on the selection — so the chain ignores the configured policy
//! and thread count.
//!
//! ## Ergodicity caveat
//!
//! Single-site proposals only explore states reachable by redrawing
//! **one** site at a time (plus whatever downstream sites that redraw
//! re-fires through changed rule applicability). Under *hard* evidence
//! that deterministically couples several independent draws — e.g. two
//! unrelated coins observed equal — the posterior support can split into
//! components no single-site move crosses, and the chain mixes only
//! within the component it initialized in. Prefer likelihood weighting
//! (or soften the evidence) for such programs; evidence whose coupling
//! routes through rule structure (redrawing a parent re-fires its
//! children as fresh sites) does not have this problem.
//!
//! ## What the stream means
//!
//! Kept states are emitted through the same [`WorldSink`] interface as
//! every other backend, each carrying weight `1/K` (log-space under
//! conditioning), so all existing statistics work unchanged. Unlike
//! likelihood weighting, MH does **not** estimate the evidence mass: the
//! emitted stream is already normalized, and the reported
//! [`EvidenceSummary`](crate::EvidenceSummary) mass is 1 by construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gdatalog_data::{Fact, Instance, Tuple, Value};
use gdatalog_lang::{CompiledProgram, RuleKind};
use gdatalog_pdb::WorldSink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::applicability::{eval_term, eval_terms, AppPair, PreparedProgram};
use crate::backend::{Backend, EvalJob};
use crate::exact::check_deadline;
use crate::observe;
use crate::policy::{ChasePolicy, PolicyKind};
use crate::sequential::RunOutcome;
use crate::EngineError;

/// The structural address of one sampling site: the existential rule that
/// fired and its evaluated key terms. Unique within a run by the induced
/// FD of §3.5 (sample-once).
type SiteKey = (usize, Tuple);

/// One recorded site: the sampled outcomes (in sample-spec order) and
/// their total log-density under the parameters seen at replay time.
struct SiteRecord {
    values: Vec<Value>,
    log_density: f64,
}

/// The chain state: a complete chase trace plus its cached likelihood.
struct Trace {
    sites: HashMap<SiteKey, SiteRecord>,
    /// Site addresses in firing order — the uniform-proposal index (a
    /// deterministic order, so site selection is seed-reproducible).
    order: Vec<SiteKey>,
    /// The full final instance (auxiliary relations included).
    world: Instance,
    /// Cached `observe::log_weight` of `world` (finite by construction —
    /// invalid states are never accepted).
    log_like: f64,
}

/// The result of replaying the chase against a trace.
struct TracedRun {
    sites: HashMap<SiteKey, SiteRecord>,
    order: Vec<SiteKey>,
    instance: Instance,
    outcome: RunOutcome,
    /// `Σ` over **reused** sites of (log-density under the replay's
    /// parameters − log-density recorded in the old trace): the prior
    /// correction term of the acceptance ratio.
    reused_delta: f64,
}

/// A replay either completes, or dies because a reused draw has prior
/// density 0 under its redrawn parameters (the proposal is then rejected
/// outright — its target density is 0).
enum Replay {
    Run(TracedRun),
    Invalid,
}

/// Runs one sequential chase under the canonical policy, **replaying**
/// `prior`'s recorded draws where available: the `resample` site (and any
/// site absent from the old trace) draws fresh from its prior; every
/// other recorded site reuses its values, re-scored under the parameters
/// the replay actually evaluates.
fn traced_run(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    input: &Instance,
    existential: &[usize],
    max_steps: usize,
    prior: Option<(&Trace, &SiteKey)>,
    rng: &mut StdRng,
) -> Result<Replay, EngineError> {
    let mut instance = input.clone();
    let mut index = prepared.new_index(&instance);
    let mut policy = ChasePolicy::new(PolicyKind::Canonical, existential);
    let mut sites: HashMap<SiteKey, SiteRecord> = HashMap::new();
    let mut order: Vec<SiteKey> = Vec::new();
    let mut reused_delta = 0.0;
    let mut steps = 0usize;
    let outcome = loop {
        let app = prepared.applicable_pairs(program, &instance, &index);
        if app.is_empty() {
            break RunOutcome::Terminated;
        }
        if steps >= max_steps {
            break RunOutcome::BudgetExhausted;
        }
        let AppPair { rule, valuation } = app[policy.select(&app)].clone();
        let fact = match &program.rules[rule].kind {
            RuleKind::Deterministic { head } => {
                let tuple: Tuple = head.args.iter().map(|t| eval_term(t, &valuation)).collect();
                Fact::new(head.rel, tuple)
            }
            RuleKind::Existential(e) => {
                let key = eval_terms(&e.key_terms, &valuation);
                let site: SiteKey = (rule, Tuple::from(key.clone()));
                let recorded = match prior {
                    Some((trace, resample)) if site != *resample => trace.sites.get(&site),
                    _ => None,
                };
                let mut values = key;
                let mut sampled = Vec::with_capacity(e.samples.len());
                let mut log_density = 0.0;
                match recorded {
                    Some(rec) => {
                        for (spec, value) in e.samples.iter().zip(&rec.values) {
                            let params = eval_terms(&spec.param_terms, &valuation);
                            let ld = spec
                                .dist
                                .log_density(&params, value)
                                .map_err(EngineError::Dist)?;
                            if ld == f64::NEG_INFINITY {
                                return Ok(Replay::Invalid);
                            }
                            log_density += ld;
                            sampled.push(value.clone());
                            values.push(value.clone());
                        }
                        reused_delta += log_density - rec.log_density;
                    }
                    None => {
                        for spec in &e.samples {
                            let params = eval_terms(&spec.param_terms, &valuation);
                            let outcome =
                                spec.dist.sample(&params, rng).map_err(EngineError::Dist)?;
                            log_density += spec
                                .dist
                                .log_density(&params, &outcome)
                                .map_err(EngineError::Dist)?;
                            sampled.push(outcome.clone());
                            values.push(outcome);
                        }
                    }
                }
                sites.insert(
                    site.clone(),
                    SiteRecord {
                        values: sampled,
                        log_density,
                    },
                );
                order.push(site);
                Fact::new(e.aux_rel, Tuple::from(values))
            }
        };
        if instance.insert(fact.rel, fact.tuple.clone()) {
            index.absorb(fact.rel, &fact.tuple);
        }
        steps += 1;
    };
    Ok(Replay::Run(TracedRun {
        sites,
        order,
        instance,
        outcome,
        reused_delta,
    }))
}

/// Attempts one Metropolis-Hastings transition of `current`, mutating it
/// in place on acceptance. Returns `None` when the trace has no sampling
/// sites (a deterministic program — the chain has one state), else
/// whether the proposal was accepted.
#[allow(clippy::too_many_arguments)]
fn mh_step(
    program: &CompiledProgram,
    prepared: &PreparedProgram,
    input: &Instance,
    existential: &[usize],
    observes: &[gdatalog_lang::CompiledObserve],
    max_steps: usize,
    current: &mut Trace,
    rng: &mut StdRng,
) -> Result<Option<bool>, EngineError> {
    let n = current.order.len();
    if n == 0 {
        return Ok(None);
    }
    let site = current.order[rng.gen_index(n)].clone();
    let replay = traced_run(
        program,
        prepared,
        input,
        existential,
        max_steps,
        Some((current, &site)),
        rng,
    )?;
    let proposal = match replay {
        Replay::Run(run) if run.outcome == RunOutcome::Terminated => run,
        // A reused draw with prior density 0, or a replay that exhausted
        // the step budget (conditioning is taken given termination):
        // target density 0 — reject.
        _ => return Ok(Some(false)),
    };
    let log_like = observe::log_weight(observes, &proposal.instance)?;
    if log_like == f64::NEG_INFINITY {
        return Ok(Some(false));
    }
    // Lightweight-MH acceptance: likelihood ratio, prior correction for
    // reused draws whose parameters moved, and the site-count asymmetry
    // of the uniform single-site proposal. Fresh, stale, and resampled
    // draws cancel between target and proposal densities.
    let n_new = proposal.order.len();
    let log_alpha = (log_like - current.log_like) + proposal.reused_delta + (n as f64).ln()
        - (n_new as f64).ln();
    let accept = if log_alpha.is_nan() {
        false
    } else {
        log_alpha >= 0.0 || rng.gen_f64().ln() < log_alpha
    };
    if accept {
        *current = Trace {
            sites: proposal.sites,
            order: proposal.order,
            world: proposal.instance,
            log_like,
        };
    }
    Ok(Some(accept))
}

/// Single-site **Metropolis-Hastings** over chase traces (see the module
/// docs): seeded, with burn-in and thinning read from
/// [`EvalOptions`](crate::EvalOptions), streaming `runs` kept states into
/// the sink at weight `1/runs` each — log-space under conditioning, so
/// every existing statistic works unchanged.
///
/// The chain initializes by forward sampling until it finds a terminated,
/// evidence-compatible state; if none exists within the attempt budget
/// the evaluation reports [`EngineError::ZeroEvidence`]. Same seed ⇒ same
/// chain: site selection, fresh draws, and acceptance coin flips all
/// consume one deterministic PRNG stream.
///
/// Acceptance counters accumulate across [`Backend::run`] calls on the
/// same instance; read them with [`MhBackend::acceptance_rate`].
#[derive(Debug, Default)]
pub struct MhBackend {
    accepted: AtomicU64,
    proposed: AtomicU64,
}

impl MhBackend {
    /// A backend with zeroed acceptance counters.
    pub fn new() -> MhBackend {
        MhBackend::default()
    }

    /// Proposals accepted / proposals made over every run so far, or
    /// `None` before the first proposal (e.g. a deterministic program,
    /// where the chain has a single state and never proposes).
    pub fn acceptance_rate(&self) -> Option<f64> {
        let proposed = self.proposed.load(Ordering::Relaxed);
        if proposed == 0 {
            return None;
        }
        Some(self.accepted.load(Ordering::Relaxed) as f64 / proposed as f64)
    }
}

impl Backend for MhBackend {
    fn name(&self) -> &'static str {
        "metropolis-hastings"
    }

    fn run(&self, job: &EvalJob<'_>, sink: &mut dyn WorldSink) -> Result<(), EngineError> {
        let (program, input, opts) = (job.program, job.input, job.options);
        let kept = opts.runs;
        if kept == 0 {
            return Ok(());
        }
        let prepared = job.plans();
        let existential: Vec<usize> = program
            .rules
            .iter()
            .filter(|r| r.is_existential())
            .map(|r| r.id)
            .collect();
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Initialization: forward-sample until a terminated run compatible
        // with the evidence appears. This is rejection initialization — if
        // the evidence admits no state within the attempt budget, the
        // posterior is (operationally) unreachable and the evaluation
        // reports ZeroEvidence rather than emitting a chain that never
        // entered the support.
        let attempts = 1_000.max(opts.burn_in);
        let mut current: Option<Trace> = None;
        for _ in 0..attempts {
            check_deadline(opts.deadline)?;
            let Replay::Run(run) = traced_run(
                program,
                &prepared,
                input,
                &existential,
                opts.max_depth,
                None,
                &mut rng,
            )?
            else {
                unreachable!("a fresh run reuses no draws");
            };
            if run.outcome != RunOutcome::Terminated {
                continue;
            }
            let log_like = observe::log_weight(job.observes, &run.instance)?;
            if log_like > f64::NEG_INFINITY {
                current = Some(Trace {
                    sites: run.sites,
                    order: run.order,
                    world: run.instance,
                    log_like,
                });
                break;
            }
        }
        let Some(mut current) = current else {
            return Err(EngineError::ZeroEvidence);
        };

        let step = |current: &mut Trace, rng: &mut StdRng| -> Result<(), EngineError> {
            if let Some(accepted) = mh_step(
                program,
                &prepared,
                input,
                &existential,
                job.observes,
                opts.max_depth,
                current,
                rng,
            )? {
                self.proposed.fetch_add(1, Ordering::Relaxed);
                if accepted {
                    self.accepted.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(())
        };

        for _ in 0..opts.burn_in {
            check_deadline(opts.deadline)?;
            step(&mut current, &mut rng)?;
        }
        let thin = opts.thin.max(1);
        let conditioned = !job.observes.is_empty();
        let log_share = -((kept as f64).ln());
        for _ in 0..kept {
            check_deadline(opts.deadline)?;
            for _ in 0..thin {
                step(&mut current, &mut rng)?;
            }
            let world = if opts.keep_aux {
                current.world.clone()
            } else {
                program.project_output(&current.world)
            };
            if conditioned {
                sink.observe_log(world, log_share);
            } else {
                sink.observe(world, 1.0 / kept as f64);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EvalOptions, Session};
    use gdatalog_data::tuple;
    use gdatalog_lang::SemanticsMode;
    use gdatalog_pdb::WorldTableSink;

    fn session(src: &str) -> Session {
        Session::from_source(src, SemanticsMode::Grohe).unwrap()
    }

    /// Drives the backend directly and returns the emitted world table.
    fn run_mh(src: &str, given: &str, opts: EvalOptions) -> (gdatalog_pdb::PossibleWorlds, f64) {
        let s = session(src);
        let observes = gdatalog_lang::compile_observations(s.program(), given).unwrap();
        let job = EvalJob {
            program: s.program(),
            prepared: None,
            input: s.facts(),
            options: &opts,
            observes: &observes,
        };
        let backend = MhBackend::new();
        let mut sink = WorldTableSink::new();
        backend.run(&job, &mut sink).unwrap();
        (sink.finish(), backend.acceptance_rate().unwrap_or(f64::NAN))
    }

    #[test]
    fn same_seed_same_chain() {
        let opts = EvalOptions {
            runs: 500,
            seed: 17,
            burn_in: 50,
            ..EvalOptions::default()
        };
        let src = r#"
            Quake(Flip<0.2>) :- true.
            Trig(Flip<0.7>) :- Quake(1).
            Trig(Flip<0.1>) :- Quake(0).
            Alarm() :- Trig(1).
        "#;
        let (a, ra) = run_mh(src, "Alarm().", opts);
        let (b, rb) = run_mh(src, "Alarm().", opts);
        assert_eq!(ra.to_bits(), rb.to_bits());
        assert_eq!(a.len(), b.len());
        for ((wa, pa), (wb, pb)) in a.iter().zip(b.iter()) {
            assert_eq!(wa, wb);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
        // And a different seed moves the chain.
        let (c, _) = run_mh(src, "Alarm().", EvalOptions { seed: 18, ..opts });
        let same = a.len() == c.len()
            && a.iter()
                .zip(c.iter())
                .all(|((wa, pa), (wc, pc))| wa == wc && pa.to_bits() == pc.to_bits());
        assert!(!same, "seed must steer the chain");
    }

    #[test]
    fn posterior_matches_exact_enumeration() {
        let src = r#"
            Quake(Flip<0.2>) :- true.
            Trig(Flip<0.7>) :- Quake(1).
            Trig(Flip<0.1>) :- Quake(0).
            Alarm() :- Trig(1).
        "#;
        let s = session(src);
        let quake = s.program().catalog.require("Quake").unwrap();
        let fact = gdatalog_data::Fact::new(quake, tuple![1i64]);
        let exact = s.eval().exact().given("Alarm().").marginal(&fact).unwrap();
        let mh = s
            .eval()
            .mh(30_000)
            .seed(5)
            .given("Alarm().")
            .marginal(&fact)
            .unwrap();
        // Chain draws are correlated; the tolerance is generous but the
        // posterior (0.636) is far from the prior (0.2), so agreement is
        // still decisive evidence the chain targets the posterior.
        assert!((mh - exact).abs() < 0.03, "mh = {mh}, exact = {exact}");
    }

    #[test]
    fn acceptance_rate_is_sane_on_flip_chain() {
        // Soft evidence keeps every proposal inside the support, so the
        // single-site chain should accept often — and never always.
        let (_, rate) = run_mh(
            "Mu(Categorical<0.0, 1.0, 4.0, 1.0>) :- true.",
            "Normal<M, 1.0> == 1.0 :- Mu(M).",
            EvalOptions {
                runs: 2_000,
                seed: 2,
                burn_in: 100,
                ..EvalOptions::default()
            },
        );
        assert!(rate > 0.2 && rate <= 1.0, "rate = {rate}");
    }

    #[test]
    fn burn_in_and_thinning_account_for_steps() {
        // thin = 3 with K kept samples must advance the chain 3K times
        // post-burn-in; we verify the accounting through the proposal
        // counter (one proposal per step on a program with sites).
        let s = session("R(Flip<0.5>) :- true. S(Flip<0.8>) :- R(1).");
        let observes = gdatalog_lang::compile_observations(s.program(), "S(1).").unwrap();
        let opts = EvalOptions {
            runs: 100,
            seed: 1,
            burn_in: 40,
            thin: 3,
            ..EvalOptions::default()
        };
        let job = EvalJob {
            program: s.program(),
            prepared: None,
            input: s.facts(),
            options: &opts,
            observes: &observes,
        };
        let backend = MhBackend::new();
        let mut sink = WorldTableSink::new();
        backend.run(&job, &mut sink).unwrap();
        assert_eq!(
            backend.proposed.load(Ordering::Relaxed),
            40 + 3 * 100,
            "burn-in steps plus thin × kept"
        );
        let table = sink.finish();
        assert!((table.mass() - 1.0).abs() < 1e-9, "uniform 1/K weights");
    }

    #[test]
    fn impossible_evidence_is_zero_evidence() {
        let s = session("R(Flip<1.0>) :- true.");
        let err = s.eval().mh(100).given("R(0).").evidence().unwrap_err();
        assert!(matches!(err, EngineError::ZeroEvidence));
    }

    #[test]
    fn deterministic_program_has_single_state_chain() {
        let s = session("E(1, 2). T(X, Y) :- E(X, Y).");
        let worlds = s.eval().mh(50).worlds().unwrap();
        assert_eq!(worlds.len(), 1);
        assert!((worlds.mass() - 1.0).abs() < 1e-9);
    }
}
