//! Monte-Carlo evaluation: sampling paths of the chase Markov process
//! (§4.3/§5.2) to estimate the program's SPDB.
//!
//! This is the evaluation strategy for programs with **continuous**
//! distributions, where the chase tree has uncountably many branches and
//! only path sampling is available. Runs that exhaust the step budget are
//! recorded as error-event observations (`err`, §4.2), so the empirical
//! mass estimates the SPDB mass `α` of Def. 2.7.

use gdatalog_data::Instance;
use gdatalog_lang::CompiledProgram;
use gdatalog_pdb::EmpiricalPdb;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::policy::{ChasePolicy, PolicyKind};
use crate::sequential::{run_sequential, RunOutcome};
use crate::EngineError;

/// Which chase procedure drives each run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseVariant {
    /// Sequential chase under the given policy (Def. 4.1).
    Sequential(PolicyKind),
    /// Parallel chase (Def. 5.1).
    Parallel,
    /// Sequential chase with deterministic rules saturated by the
    /// semi-naive Datalog engine between samples (same distribution by
    /// Theorem 6.1; much faster on rule-heavy programs).
    Saturating,
}

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Number of independent runs.
    pub runs: usize,
    /// Step budget per run (sequential steps or parallel rounds).
    pub max_steps: usize,
    /// Master seed; run `i` uses a deterministic derivation of it.
    pub seed: u64,
    /// Chase procedure.
    pub variant: ChaseVariant,
    /// Worker threads (1 = run on the calling thread).
    pub threads: usize,
    /// Whether to keep auxiliary relations in the sampled instances.
    pub keep_aux: bool,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            runs: 10_000,
            max_steps: 10_000,
            seed: 0xC0FFEE,
            variant: ChaseVariant::Sequential(PolicyKind::Canonical),
            threads: 1,
            keep_aux: false,
        }
    }
}

/// SplitMix64 finalizer: decorrelates per-run seeds from the master seed.
fn derive_seed(master: u64, run: u64) -> u64 {
    let mut z = master ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn run_range(
    program: &CompiledProgram,
    input: &Instance,
    config: &McConfig,
    lo: usize,
    hi: usize,
) -> Result<EmpiricalPdb, EngineError> {
    let mut pdb = EmpiricalPdb::new();
    let existential: Vec<usize> = program
        .rules
        .iter()
        .filter(|r| r.is_existential())
        .map(|r| r.id)
        .collect();
    for run_ix in lo..hi {
        let seed = derive_seed(config.seed, run_ix as u64);
        let mut rng = StdRng::seed_from_u64(seed);
        let run = match config.variant {
            ChaseVariant::Sequential(kind) => {
                // Random policies get their own per-run stream.
                let kind = match kind {
                    PolicyKind::Random { seed: s } => PolicyKind::Random {
                        seed: derive_seed(s, run_ix as u64),
                    },
                    other => other,
                };
                let mut policy = ChasePolicy::new(kind, &existential);
                run_sequential(program, input, &mut policy, &mut rng, config.max_steps, false)
                    .map_err(EngineError::Dist)?
            }
            ChaseVariant::Parallel => {
                crate::parallel::run_parallel(program, input, &mut rng, config.max_steps, false)
                    .map_err(EngineError::Dist)?
            }
            ChaseVariant::Saturating => {
                crate::saturate::run_saturating(program, input, &mut rng, config.max_steps, false)
                    .map_err(EngineError::Dist)?
            }
        };
        match run.outcome {
            RunOutcome::Terminated => {
                let inst = if config.keep_aux {
                    run.instance
                } else {
                    program.project_output(&run.instance)
                };
                pdb.push(inst);
            }
            RunOutcome::BudgetExhausted => pdb.push_error(),
        }
    }
    Ok(pdb)
}

/// Draws `config.runs` independent chase runs and collects them into an
/// [`EmpiricalPdb`]. With `config.threads > 1` the runs are split across
/// crossbeam-scoped worker threads; results are bit-identical to the
/// single-threaded execution because every run derives its own seed.
///
/// # Errors
/// Propagates the first runtime distribution failure.
pub fn sample_pdb(
    program: &CompiledProgram,
    input: &Instance,
    config: &McConfig,
) -> Result<EmpiricalPdb, EngineError> {
    let threads = config.threads.max(1).min(config.runs.max(1));
    if threads <= 1 {
        return run_range(program, input, config, 0, config.runs);
    }
    let chunk = config.runs.div_ceil(threads);
    let results = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(config.runs);
            if lo >= hi {
                break;
            }
            handles.push(scope.spawn(move |_| run_range(program, input, config, lo, hi)));
        }
        let mut parts = Vec::new();
        for h in handles {
            parts.push(h.join().expect("worker panicked"));
        }
        parts
    })
    .expect("crossbeam scope");
    let mut merged = EmpiricalPdb::new();
    for part in results {
        merged.merge(part?);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    #[test]
    fn flip_frequency_matches_bias() {
        let prog = compile("R(Flip<0.3>) :- true.");
        let cfg = McConfig {
            runs: 20_000,
            max_steps: 100,
            seed: 42,
            ..McConfig::default()
        };
        let pdb = sample_pdb(&prog, &prog.initial_instance, &cfg).unwrap();
        assert_eq!(pdb.errors(), 0);
        let r = prog.catalog.require("R").unwrap();
        let f = gdatalog_data::Fact::new(r, tuple![1i64]);
        let p = pdb.marginal(&f);
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
        // Aux relations projected away by default.
        assert!(pdb.samples()[0]
            .populated_relations()
            .all(|rel| prog.output_relations.contains(&rel)));
    }

    #[test]
    fn multithreaded_equals_singlethreaded() {
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<0.1>) :- City(C, R).
        "#,
        );
        let base = McConfig {
            runs: 2_000,
            max_steps: 100,
            seed: 7,
            ..McConfig::default()
        };
        let single = sample_pdb(&prog, &prog.initial_instance, &base).unwrap();
        let multi = sample_pdb(
            &prog,
            &prog.initial_instance,
            &McConfig {
                threads: 4,
                ..base
            },
        )
        .unwrap();
        // Same per-run seeds → same multiset of outcomes.
        assert_eq!(single.runs(), multi.runs());
        let mut a = single.to_distribution();
        let b = multi.to_distribution();
        for (k, v) in &b {
            let av = a.remove(k).unwrap_or(-1.0);
            assert!((av - v).abs() < 1e-12);
        }
        assert!(a.is_empty());
    }

    #[test]
    fn budget_exhaustion_counts_as_error_mass() {
        let prog = compile(
            r#"
            C(0.0).
            C(Normal<V, 1.0>) :- C(V).
        "#,
        );
        let cfg = McConfig {
            runs: 50,
            max_steps: 30,
            seed: 1,
            ..McConfig::default()
        };
        let pdb = sample_pdb(&prog, &prog.initial_instance, &cfg).unwrap();
        assert_eq!(pdb.errors(), 50, "a.s. non-terminating program");
        assert_eq!(pdb.mass(), 0.0);
    }

    #[test]
    fn parallel_variant_agrees_on_marginals() {
        let prog = compile("R(Flip<0.6>) :- true.");
        let r = prog.catalog.require("R").unwrap();
        let f = gdatalog_data::Fact::new(r, tuple![1i64]);
        let seq = sample_pdb(
            &prog,
            &prog.initial_instance,
            &McConfig {
                runs: 20_000,
                seed: 3,
                ..McConfig::default()
            },
        )
        .unwrap();
        let par = sample_pdb(
            &prog,
            &prog.initial_instance,
            &McConfig {
                runs: 20_000,
                seed: 4,
                variant: ChaseVariant::Parallel,
                ..McConfig::default()
            },
        )
        .unwrap();
        assert!((seq.marginal(&f) - par.marginal(&f)).abs() < 0.02);
    }
}
