//! Monte-Carlo evaluation: sampling paths of the chase Markov process
//! (§4.3/§5.2) to estimate the program's SPDB.
//!
//! This is the evaluation strategy for programs with **continuous**
//! distributions, where the chase tree has uncountably many branches and
//! only path sampling is available. Runs that exhaust the step budget are
//! recorded as error-event observations (`err`, §4.2), so the empirical
//! mass estimates the SPDB mass `α` of Def. 2.7.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use gdatalog_data::Instance;
use gdatalog_lang::CompiledProgram;
use gdatalog_pdb::EmpiricalPdb;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::policy::{ChasePolicy, PolicyKind};
use crate::sequential::RunOutcome;
use crate::EngineError;

/// Which chase procedure drives each run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseVariant {
    /// Sequential chase under the given policy (Def. 4.1).
    Sequential(PolicyKind),
    /// Parallel chase (Def. 5.1).
    Parallel,
    /// Sequential chase with deterministic rules saturated by the
    /// semi-naive Datalog engine between samples (same distribution by
    /// Theorem 6.1; much faster on rule-heavy programs).
    Saturating,
}

/// Monte-Carlo configuration.
#[derive(Debug, Clone, Copy)]
pub struct McConfig {
    /// Number of independent runs.
    pub runs: usize,
    /// Step budget per run (sequential steps or parallel rounds).
    pub max_steps: usize,
    /// Master seed; run `i` uses a deterministic derivation of it.
    pub seed: u64,
    /// Chase procedure.
    pub variant: ChaseVariant,
    /// Worker threads (1 = run on the calling thread).
    pub threads: usize,
    /// Whether to keep auxiliary relations in the sampled instances.
    pub keep_aux: bool,
    /// Cooperative cancellation: checked before each run starts, so a
    /// serving layer can bound request latency. `None` never cancels.
    pub deadline: Option<std::time::Instant>,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            runs: 10_000,
            max_steps: 10_000,
            seed: 0xC0FFEE,
            variant: ChaseVariant::Sequential(PolicyKind::Canonical),
            threads: 1,
            keep_aux: false,
            deadline: None,
        }
    }
}

/// SplitMix64 finalizer: decorrelates per-run seeds from the master seed.
pub(crate) fn derive_seed(master: u64, run: u64) -> u64 {
    let mut z = master ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Executes run `run_ix` and returns its observation: `Some(world)` for a
/// terminated run, `None` for the error event (budget exhausted).
pub(crate) fn single_run(
    program: &CompiledProgram,
    prepared: &crate::applicability::PreparedProgram,
    input: &Instance,
    config: &McConfig,
    existential: &[usize],
    run_ix: usize,
) -> Result<Option<Instance>, EngineError> {
    // Cooperative cancellation between runs: each run is bounded by
    // `max_steps`, so the overage past the deadline is at most one run.
    crate::exact::check_deadline(config.deadline)?;
    let seed = derive_seed(config.seed, run_ix as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let run = match config.variant {
        ChaseVariant::Sequential(kind) => {
            // Random policies get their own per-run stream.
            let kind = match kind {
                PolicyKind::Random { seed: s } => PolicyKind::Random {
                    seed: derive_seed(s, run_ix as u64),
                },
                other => other,
            };
            let mut policy = ChasePolicy::new(kind, existential);
            crate::sequential::run_sequential_prepared(
                program,
                prepared,
                input,
                &mut policy,
                &mut rng,
                config.max_steps,
                false,
            )
            .map_err(EngineError::Dist)?
        }
        ChaseVariant::Parallel => crate::parallel::run_parallel_prepared(
            program,
            prepared,
            input,
            &mut rng,
            config.max_steps,
            false,
        )
        .map_err(EngineError::Dist)?,
        ChaseVariant::Saturating => crate::saturate::run_saturating_prepared(
            program,
            prepared,
            input,
            &mut rng,
            config.max_steps,
            false,
        )
        .map_err(EngineError::Dist)?,
    };
    Ok(match run.outcome {
        RunOutcome::Terminated => Some(if config.keep_aux {
            run.instance
        } else {
            program.project_output(&run.instance)
        }),
        RunOutcome::BudgetExhausted => None,
    })
}

/// Draws `config.runs` independent chase runs and collects them into an
/// [`EmpiricalPdb`]. With `config.threads > 1` the runs are distributed by
/// **work stealing** over a shared atomic run counter, so threads that draw
/// short runs immediately pick up more work instead of idling at a chunk
/// boundary. Results are bit-identical to the single-threaded execution:
/// every run derives its own seed from its run index, and observations are
/// merged in run-index order regardless of which worker produced them.
///
/// # Errors
/// Propagates the runtime distribution failure of the smallest-index
/// failing run (matching what a sequential execution would report).
pub fn sample_pdb(
    program: &CompiledProgram,
    input: &Instance,
    config: &McConfig,
) -> Result<EmpiricalPdb, EngineError> {
    let existential: Vec<usize> = program
        .rules
        .iter()
        .filter(|r| r.is_existential())
        .map(|r| r.id)
        .collect();
    let prepared = crate::applicability::PreparedProgram::new(program);
    let threads = config.threads.max(1).min(config.runs.max(1));
    if threads <= 1 {
        let mut pdb = EmpiricalPdb::new();
        for run_ix in 0..config.runs {
            match single_run(program, &prepared, input, config, &existential, run_ix)? {
                Some(world) => pdb.push(world),
                None => pdb.push_error(),
            }
        }
        return Ok(pdb);
    }

    let next_run = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    type RunObs = (usize, Result<Option<Instance>, EngineError>);
    let mut per_worker: Vec<Vec<RunObs>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next_run = &next_run;
                let failed = &failed;
                let prepared = &prepared;
                let existential = &existential;
                scope.spawn(move || {
                    let mut local: Vec<RunObs> = Vec::new();
                    loop {
                        // Check the failure flag only *before* claiming:
                        // every claimed index is executed, so the executed
                        // runs form a contiguous prefix and the merge below
                        // reports the same (smallest-index) failure a
                        // sequential execution would.
                        if failed.load(Ordering::Relaxed) {
                            return local;
                        }
                        let run_ix = next_run.fetch_add(1, Ordering::Relaxed);
                        if run_ix >= config.runs {
                            return local;
                        }
                        let obs = single_run(program, prepared, input, config, existential, run_ix);
                        if obs.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        local.push((run_ix, obs));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Merge in run-index order for bit-identical output; report the
    // smallest-index failure, as a sequential execution would.
    let mut observations: Vec<RunObs> = per_worker.drain(..).flatten().collect();
    observations.sort_by_key(|(ix, _)| *ix);
    let mut pdb = EmpiricalPdb::new();
    for (_, obs) in observations {
        match obs? {
            Some(world) => pdb.push(world),
            None => pdb.push_error(),
        }
    }
    Ok(pdb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gdatalog_data::tuple;
    use gdatalog_dist::Registry;
    use gdatalog_lang::{parse_program, translate, validate, SemanticsMode};
    use std::sync::Arc;

    fn compile(src: &str) -> CompiledProgram {
        let v = validate(parse_program(src).unwrap(), Arc::new(Registry::standard())).unwrap();
        translate(&v, SemanticsMode::Grohe).unwrap()
    }

    #[test]
    fn flip_frequency_matches_bias() {
        let prog = compile("R(Flip<0.3>) :- true.");
        let cfg = McConfig {
            runs: 20_000,
            max_steps: 100,
            seed: 42,
            ..McConfig::default()
        };
        let pdb = sample_pdb(&prog, &prog.initial_instance, &cfg).unwrap();
        assert_eq!(pdb.errors(), 0);
        let r = prog.catalog.require("R").unwrap();
        let f = gdatalog_data::Fact::new(r, tuple![1i64]);
        let p = pdb.marginal(&f);
        assert!((p - 0.3).abs() < 0.01, "p = {p}");
        // Aux relations projected away by default.
        assert!(pdb.samples()[0]
            .populated_relations()
            .all(|rel| prog.output_relations.contains(&rel)));
    }

    #[test]
    fn multithreaded_equals_singlethreaded() {
        let prog = compile(
            r#"
            rel City(symbol, real) input.
            City(gotham, 0.3).
            Earthquake(C, Flip<0.1>) :- City(C, R).
        "#,
        );
        let base = McConfig {
            runs: 2_000,
            max_steps: 100,
            seed: 7,
            ..McConfig::default()
        };
        let single = sample_pdb(&prog, &prog.initial_instance, &base).unwrap();
        let multi = sample_pdb(
            &prog,
            &prog.initial_instance,
            &McConfig { threads: 4, ..base },
        )
        .unwrap();
        // Same per-run seeds → same multiset of outcomes.
        assert_eq!(single.runs(), multi.runs());
        let mut a = single.to_distribution();
        let b = multi.to_distribution();
        for (k, v) in &b {
            let av = a.remove(k).unwrap_or(-1.0);
            assert!((av - v).abs() < 1e-12);
        }
        assert!(a.is_empty());
    }

    #[test]
    fn budget_exhaustion_counts_as_error_mass() {
        let prog = compile(
            r#"
            C(0.0).
            C(Normal<V, 1.0>) :- C(V).
        "#,
        );
        let cfg = McConfig {
            runs: 50,
            max_steps: 30,
            seed: 1,
            ..McConfig::default()
        };
        let pdb = sample_pdb(&prog, &prog.initial_instance, &cfg).unwrap();
        assert_eq!(pdb.errors(), 50, "a.s. non-terminating program");
        assert_eq!(pdb.mass(), 0.0);
    }

    #[test]
    fn elapsed_deadline_cancels_sampling() {
        let prog = compile("R(Flip<0.5>) :- true.");
        let cfg = McConfig {
            runs: 1_000,
            deadline: Some(std::time::Instant::now()),
            ..McConfig::default()
        };
        let err = sample_pdb(&prog, &prog.initial_instance, &cfg).unwrap_err();
        assert!(matches!(err, EngineError::DeadlineExceeded));
        // Multi-threaded sampling cancels too.
        let err = sample_pdb(
            &prog,
            &prog.initial_instance,
            &McConfig { threads: 4, ..cfg },
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::DeadlineExceeded));
    }

    #[test]
    fn parallel_variant_agrees_on_marginals() {
        let prog = compile("R(Flip<0.6>) :- true.");
        let r = prog.catalog.require("R").unwrap();
        let f = gdatalog_data::Fact::new(r, tuple![1i64]);
        let seq = sample_pdb(
            &prog,
            &prog.initial_instance,
            &McConfig {
                runs: 20_000,
                seed: 3,
                ..McConfig::default()
            },
        )
        .unwrap();
        let par = sample_pdb(
            &prog,
            &prog.initial_instance,
            &McConfig {
                runs: 20_000,
                seed: 4,
                variant: ChaseVariant::Parallel,
                ..McConfig::default()
            },
        )
        .unwrap();
        assert!((seq.marginal(&f) - par.marginal(&f)).abs() < 0.02);
    }
}
