#![warn(missing_docs)]

//! # gdatalog-core
//!
//! The **probabilistic chase** of "Generative Datalog with Continuous
//! Distributions" (Grohe, Kaminski, Katoen, Lindner; PODS 2020) — the
//! paper's primary contribution, as an executable engine.
//!
//! A compiled GDatalog program (from `gdatalog-lang`) is run by repeatedly
//! firing applicable rules of its associated existential Datalog program:
//!
//! * [`applicability`] — the applicable-pair set `App(D)` of §3.3;
//! * [`policy`] — chase policies, the concrete counterparts of the paper's
//!   *measurable selections* `app` of `App`;
//! * [`sequential`] — sequential chase steps and runs (Def. 4.1);
//! * [`parallel`] — parallel chase steps and runs (Def. 5.1), where **all**
//!   applicable pairs fire simultaneously with independent samples;
//! * [`kernel`] — the step functions `step_app` / `step_App` as Markov
//!   kernels on the space of instances (Prop. 4.6 / 5.3), supporting both
//!   path sampling and exact finite-support branching;
//! * [`exact`] — exhaustive chase-tree enumeration producing an exact
//!   [`gdatalog_pdb::PossibleWorlds`] table with rigorous sub-probability
//!   mass accounting (the push-forward measure along `lim-inst`, §4.2);
//! * [`tree`] — explicit chase trees with probability annotations and DOT
//!   export (Figure 1 of the paper);
//! * [`mc`] — Monte-Carlo path sampling of the Markov process, single- or
//!   multi-threaded, producing [`gdatalog_pdb::EmpiricalPdb`] estimates;
//! * [`mcmc`] — single-site Metropolis-Hastings over chase traces
//!   ([`MhBackend`]), posterior sampling that stays effective where
//!   likelihood weighting's effective sample size collapses;
//! * [`observe`] — evidence weighting for conditioning (`@observe` /
//!   [`Evaluation::given`](session::Evaluation::given)): per-world
//!   log-likelihoods that turn exact enumeration into filtered
//!   renormalization and Monte-Carlo into likelihood-weighted importance
//!   sampling;
//! * [`engine`] — the user-facing facade tying everything together,
//!   including the transformation of probabilistic *inputs*
//!   (Theorems 4.8/5.5/6.2);
//! * [`queryset`] — first-class queries ([`QueryIr`]/[`QuerySet`]):
//!   many statistics answered in **one** backend pass through a sink
//!   multiplexer, with conditioning normalization computed once and
//!   shared.

pub mod applicability;
pub mod backend;
pub mod engine;
pub mod exact;
pub mod fingerprint;
pub mod kernel;
pub mod mc;
pub(crate) mod mc_batch;
pub mod mcmc;
pub mod observe;
pub mod parallel;
pub mod policy;
pub mod queryset;
pub mod saturate;
pub mod sequential;
pub mod session;
pub mod tree;

pub use applicability::{applicable_pairs, AppPair, PreparedProgram};
pub use backend::{
    Backend, EvalJob, EvalOptions, ExactParallelBackend, ExactSequentialBackend, McBackend,
    RunBudget,
};
pub use engine::{Engine, EngineError};
pub use exact::{
    enumerate_parallel, enumerate_parallel_prepared, enumerate_sequential,
    enumerate_sequential_prepared, ExactConfig,
};
pub use fingerprint::source_fingerprint;
pub use kernel::{ParallelKernel, SequentialKernel, StepKernel};
pub use mc::{sample_pdb, ChaseVariant, McConfig};
pub use mcmc::MhBackend;
pub use observe::{log_weight, weight as observation_weight};
pub use policy::{ChasePolicy, PolicyKind};
pub use queryset::{tail_event, Answer, Answers, QueryIr, QuerySet};
pub use saturate::run_saturating;
pub use sequential::{run_sequential, ChaseRun, RunOutcome, TraceStep};
pub use session::{EssTarget, Evaluation, EvidenceSummary, Session};
pub use tree::{build_chase_tree, ChaseNode, ChaseTree};
