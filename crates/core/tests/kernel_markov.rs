//! The Markov-process view (Prop. 4.6 / Cor. 4.7 / §4.3): iterating the
//! step kernel's explicit transition measure from the Dirac distribution on
//! `D₀` until absorption must reproduce the push-forward measure computed
//! by exact enumeration — i.e. `lim-inst` of the Markov process *is* the
//! program's SPDB.

use std::collections::BTreeMap;

use gdatalog_core::{
    enumerate_sequential, ChasePolicy, Engine, ExactConfig, ParallelKernel, PolicyKind,
    SequentialKernel, StepKernel,
};
use gdatalog_data::Instance;
use gdatalog_lang::SemanticsMode;

/// Distributes mass through `kernel` until every state is absorbing (or
/// `max_rounds` is hit), returning the absorbed distribution.
fn absorb(
    kernel: &mut dyn StepKernel,
    start: Instance,
    max_rounds: usize,
) -> BTreeMap<Instance, f64> {
    let mut live: BTreeMap<Instance, f64> = BTreeMap::from([(start, 1.0)]);
    let mut absorbed: BTreeMap<Instance, f64> = BTreeMap::new();
    for _ in 0..max_rounds {
        if live.is_empty() {
            break;
        }
        let mut next: BTreeMap<Instance, f64> = BTreeMap::new();
        for (state, p) in live {
            match kernel
                .branch_step(&state, ExactConfig::default())
                .expect("discrete")
            {
                None => *absorbed.entry(state).or_insert(0.0) += p,
                Some((children, truncated)) => {
                    assert!(truncated < 1e-12, "finite supports only");
                    for (child, q) in children {
                        *next.entry(child).or_insert(0.0) += p * q;
                    }
                }
            }
        }
        live = next;
    }
    assert!(live.is_empty(), "kernel did not absorb in time");
    absorbed
}

fn check_program(src: &str) {
    let engine = Engine::from_source(src, SemanticsMode::Grohe).expect("ok");
    let program = engine.program();

    // Reference: exact enumeration (raw, aux retained).
    let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
    let reference = enumerate_sequential(
        program,
        &program.initial_instance,
        &mut policy,
        ExactConfig::default(),
    )
    .expect("ok");

    // Sequential kernel iterated to absorption.
    let mut seq = SequentialKernel::new(program, ChasePolicy::new(PolicyKind::Canonical, &[]));
    let seq_dist = absorb(&mut seq, program.initial_instance.clone(), 200);
    assert_eq!(seq_dist.len(), reference.len(), "same support");
    for (world, p) in &seq_dist {
        let q = reference
            .iter()
            .find(|(d, _)| *d == world)
            .map(|(_, q)| q)
            .unwrap_or(0.0);
        assert!((p - q).abs() < 1e-12, "world prob {p} vs {q}");
    }

    // Parallel kernel iterated to absorption gives the same distribution
    // (Thm. 6.1 again, through the kernel API).
    let mut par = ParallelKernel::new(program);
    let par_dist = absorb(&mut par, program.initial_instance.clone(), 200);
    let total: f64 = par_dist.values().sum();
    assert!((total - 1.0).abs() < 1e-12);
    for (world, p) in &par_dist {
        let q = seq_dist.get(world).copied().unwrap_or(0.0);
        assert!((p - q).abs() < 1e-12, "parallel vs sequential: {p} vs {q}");
    }
}

#[test]
fn kernel_iteration_reproduces_enumeration_single_flip() {
    check_program("R(Flip<0.5>) :- true.");
}

#[test]
fn kernel_iteration_reproduces_enumeration_two_coins() {
    check_program("R(Flip<0.3>) :- true. S(Flip<0.7>) :- true. T(X) :- R(X), S(X).");
}

#[test]
fn kernel_iteration_reproduces_enumeration_data_dependent() {
    check_program(
        r#"
        rel City(symbol, real) input.
        City(a, 0.5). City(b, 0.25).
        Quake(C, Flip<R>) :- City(C, R).
        Hit(C) :- Quake(C, 1).
        "#,
    );
}
