//! Batch serving end-to-end: one cached model, pooled sessions, a batch
//! of independent requests with differing evidence — the tutorial's
//! serving chapter as a runnable program.
//!
//! ```sh
//! cargo run --release --example batch_serving
//! ```

use gdatalog::prelude::*;

fn main() {
    let cache = ProgramCache::new();
    let model = cache
        .get_or_compile(
            "rel City(symbol, real) input.
             Earthquake(C, Flip<R>) :- City(C, R).
             Trig(C, Flip<0.6>) :- Earthquake(C, 1).
             Alarm(C) :- Trig(C, 1).",
            SemanticsMode::Grohe,
        )
        .expect("model compiles");
    let server = Server::new(model).threads(4);

    // A mixed batch: exact marginals over varying evidence, a joint
    // probability, an expectation, and a seeded Monte-Carlo histogram.
    let mut requests: Vec<Request> = (0..8)
        .map(|i| {
            Request::marginal(format!("Alarm(city{i})"))
                .evidence(format!("City(city{i}, 0.{}).", 1 + i))
                .exact()
        })
        .collect();
    requests.push(
        Request::probability("Alarm(a). Alarm(b).")
            .evidence("City(a, 0.5). City(b, 0.5).")
            .exact(),
    );
    requests.push(
        Request::expectation("Alarm", AggFun::Count)
            .evidence("City(a, 0.5). City(b, 0.5).")
            .exact(),
    );
    requests.push(
        Request::histogram("Earthquake", 1, 0.0, 2.0, 2)
            .evidence("City(a, 0.5).")
            .mc(20_000)
            .seed(7),
    );
    // A dashboard-style request: five statistics about one input, answered
    // by a single evaluation pass (the `Evaluation::answer` fast path).
    requests.push(
        Request::marginal("Alarm(a)")
            .query(QueryKind::Marginals {
                rel: "Alarm".into(),
            })
            .query(QueryKind::Expectation {
                rel: "Alarm".into(),
                agg: AggFun::Count,
                col: None,
            })
            .query(QueryKind::Quantile {
                rel: "Earthquake".into(),
                col: 1,
                q: 0.9,
            })
            .query(QueryKind::Tail {
                rel: "Earthquake".into(),
                col: 1,
                threshold: 1.0,
            })
            .input("City(a, 0.5). City(b, 0.5).")
            .exact(),
    );
    // A conditioned request: the reply carries the evidence diagnostics
    // (observed mass, effective sample size) alongside the posterior.
    requests.push(
        Request::marginal("Earthquake(a, 1)")
            .input("City(a, 0.5).")
            .given("Alarm(a).")
            .exact(),
    );

    for (i, answer) in server.batch(&requests).into_iter().enumerate() {
        match answer {
            Ok(reply) => println!("[{i}] {}", reply.to_json().render()),
            Err(e) => println!("[{i}] error: {e}"),
        }
    }
    let stats = cache.stats();
    println!(
        "cache: {} miss(es), {} entri(es); pool created {} session(s) for {} requests",
        stats.misses,
        stats.entries,
        server.pool().created(),
        requests.len()
    );
}
