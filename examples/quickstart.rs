//! Quickstart: compile a GDatalog program into a session, evaluate it
//! exactly and by Monte-Carlo through the builder API, and inspect the
//! resulting (sub-)probabilistic database.
//!
//! Run with `cargo run --example quickstart`.

use gdatalog::prelude::*;

fn main() {
    // A tiny generative program: one biased coin decides whether the
    // machine is faulty; a faulty machine triggers an alert.
    let src = r#"
        Faulty(Flip<0.2>) :- true.
        Alert(on) :- Faulty(1).
    "#;

    let session = Session::from_source(src, SemanticsMode::Grohe).expect("valid program");
    let program = session.program();

    println!("weakly acyclic: {}", program.weakly_acyclic());
    println!(
        "rules in the associated Datalog∃ program: {}",
        program.rules.len()
    );

    // --- Exact evaluation -------------------------------------------------
    let worlds = session
        .eval()
        .exact()
        .worlds()
        .expect("discrete program enumerates exactly");
    println!("\nexact world table (output schema):");
    for (text, p) in worlds.table(&program.catalog) {
        println!("  {p:.4}  {text}");
    }
    println!(
        "  mass = {:.6}, deficit = {:.6}",
        worlds.mass(),
        worlds.deficit().total()
    );

    // Marginal of a single fact, as a query terminal on the same session.
    let alert = program.catalog.require("Alert").expect("declared");
    let fact = Fact::new(alert, Tuple::from(vec![Value::sym("on")]));
    let exact_p = session.eval().exact().marginal(&fact).expect("discrete");
    println!("\nP(Alert(on)) = {exact_p:.4} (exact)");

    // --- Monte-Carlo evaluation -------------------------------------------
    // The same terminal on the sampling backend *streams*: the marginal
    // folds run-by-run, no per-run instance is retained.
    let mc_p = session
        .eval()
        .sample(100_000)
        .seed(2024)
        .threads(4)
        .marginal(&fact)
        .expect("sampling succeeds");
    println!("P(Alert(on)) ≈ {mc_p:.4} (100000 streamed runs)");
    assert!((exact_p - mc_p).abs() < 0.01);
}
