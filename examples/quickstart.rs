//! Quickstart: parse a GDatalog program, evaluate it exactly and by
//! Monte-Carlo, and inspect the resulting (sub-)probabilistic database.
//!
//! Run with `cargo run --example quickstart`.

use gdatalog::prelude::*;

fn main() {
    // A tiny generative program: one biased coin decides whether the
    // machine is faulty; a faulty machine triggers an alert.
    let src = r#"
        Faulty(Flip<0.2>) :- true.
        Alert(on) :- Faulty(1).
    "#;

    let engine = Engine::from_source(src, SemanticsMode::Grohe).expect("valid program");
    let program = engine.program();

    println!("weakly acyclic: {}", program.weakly_acyclic());
    println!(
        "rules in the associated Datalog∃ program: {}",
        program.rules.len()
    );

    // --- Exact evaluation -------------------------------------------------
    let worlds = engine
        .enumerate(None, ExactConfig::default())
        .expect("discrete program enumerates exactly");
    println!("\nexact world table (output schema):");
    for (text, p) in worlds.table(&program.catalog) {
        println!("  {p:.4}  {text}");
    }
    println!(
        "  mass = {:.6}, deficit = {:.6}",
        worlds.mass(),
        worlds.deficit().total()
    );

    // Marginal of a single fact.
    let alert = program.catalog.require("Alert").expect("declared");
    let fact = Fact::new(alert, Tuple::from(vec![Value::sym("on")]));
    println!("\nP(Alert(on)) = {:.4} (exact)", worlds.marginal(&fact));

    // --- Monte-Carlo evaluation -------------------------------------------
    let cfg = McConfig {
        runs: 100_000,
        seed: 2024,
        ..McConfig::default()
    };
    let pdb = engine.sample(None, &cfg).expect("sampling succeeds");
    println!(
        "P(Alert(on)) ≈ {:.4} ({} runs)",
        pdb.marginal(&fact),
        pdb.runs()
    );
}
