//! Example 1.1 and §6.2 of the paper: how this paper's semantics differs
//! from Bárány et al. (TODS 2017), program by program.
//!
//! * `G0` — two identical `R(Flip<1/2>)` rules: two independent experiments
//!   here, one shared experiment there.
//! * `Gε` — perturbing one bias: under the new semantics the outcome
//!   distribution is continuous in ε (the whole point of Example 1.1).
//! * `G′0` — renaming the distribution: invisible to the new semantics,
//!   decorrelating under Bárány's.
//! * `H`/`H′` — the §6.2 simulation: pulling sampling into a shared rule
//!   makes the new semantics reproduce the old one.
//!
//! Run with `cargo run --example semantics_comparison`.

use gdatalog::lang::{parse_program, simulate_barany_in_grohe, BSIM_PREFIX};
use gdatalog::prelude::*;

fn show(label: &str, engine: &Engine) -> PossibleWorlds {
    let worlds = engine.eval().exact().worlds().expect("discrete program");
    println!("\n{label}:");
    for (text, p) in worlds.table(&engine.program().catalog) {
        println!("  {p:.4}  {text}");
    }
    worlds
}

/// Compares world tables rendered as canonical text — the right notion of
/// equality across engines whose catalogs assign different relation ids.
fn tables_close(a: &[(String, f64)], b: &[(String, f64)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ta, pa), (tb, pb))| ta == tb && (pa - pb).abs() < 1e-12)
}

fn main() {
    // --- G0 -----------------------------------------------------------
    let g0 = "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.";
    let new = Engine::from_source(g0, SemanticsMode::Grohe).unwrap();
    let old = Engine::from_source(g0, SemanticsMode::Barany).unwrap();
    let w_new = show("G0 under this paper's semantics", &new);
    let w_old = show("G0 under Bárány et al. semantics", &old);
    assert_eq!(w_new.len(), 3);
    assert_eq!(w_old.len(), 2);

    // --- Gε sweep -------------------------------------------------------
    println!("\nGε: P(world) as ε → 0 (new semantics; program as displayed in the paper)");
    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "ε", "{R(1)}", "{R(0)}", "both"
    );
    for eps in [0.25, 0.1, 0.05, 0.01, 0.0] {
        let src = format!("R(Flip<0.5>) :- true. R(Flip<{}>) :- true.", 0.5 + eps);
        let engine = Engine::from_source(&src, SemanticsMode::Grohe).unwrap();
        let worlds = engine.eval().worlds().unwrap();
        let r = engine.program().catalog.require("R").unwrap();
        let one = Tuple::from(vec![Value::int(1)]);
        let zero = Tuple::from(vec![Value::int(0)]);
        let p1 = worlds.probability(|d| d.contains(r, &one) && !d.contains(r, &zero));
        let p0 = worlds.probability(|d| d.contains(r, &zero) && !d.contains(r, &one));
        let pb = worlds.probability(|d| d.contains(r, &zero) && d.contains(r, &one));
        println!("{eps:>8} {p1:>12.6} {p0:>12.6} {pb:>12.6}");
    }
    println!("→ converges to the G0 outcome (1/4, 1/4, 1/2): the semantics is continuous in ε.");

    // --- G′0 -------------------------------------------------------------
    // `Bernoulli` is the same kernel as `Flip` under a different name.
    let g0p = "R(Flip<0.5>) :- true. R(Bernoulli<0.5>) :- true.";
    let e_new_p = Engine::from_source(g0p, SemanticsMode::Grohe).unwrap();
    let e_old_p = Engine::from_source(g0p, SemanticsMode::Barany).unwrap();
    let w_new_p = show(
        "G′0 (renamed distribution) under this paper's semantics",
        &e_new_p,
    );
    let w_old_p = show("G′0 under Bárány et al. semantics", &e_old_p);
    // Cross-engine comparisons go through canonical text tables.
    assert!(
        tables_close(
            &w_new.table(&new.program().catalog),
            &w_new_p.table(&e_new_p.program().catalog)
        ),
        "renaming is invisible to the new semantics"
    );
    assert!(
        !tables_close(
            &w_old.table(&old.program().catalog),
            &w_old_p.table(&e_old_p.program().catalog)
        ),
        "renaming decorrelates under the old semantics"
    );

    // --- H and the §6.2 simulation ---------------------------------------
    let h = "R(Flip<0.5>) :- true. S(Flip<0.5>) :- true.";
    let e_h_old = Engine::from_source(h, SemanticsMode::Barany).unwrap();
    let h_old = show(
        "H under Bárány et al. semantics (perfectly correlated)",
        &e_h_old,
    );
    let h_ast = parse_program(h).unwrap();
    let h_prime = simulate_barany_in_grohe(&h_ast);
    println!("\nH′ (the §6.2 rewriting):\n{h_prime}");
    let sim = Engine::from_ast(
        h_prime,
        SemanticsMode::Grohe,
        std::sync::Arc::new(Registry::standard()),
    )
    .unwrap();
    let catalog = sim.program().catalog.clone();
    let w_sim = sim
        .eval()
        .worlds()
        .unwrap()
        // Drop the helper relations of the rewriting before comparing.
        .project_relations(|rel| !catalog.name(rel).starts_with(BSIM_PREFIX));
    println!("H′ under this paper's semantics, helpers projected away:");
    for (text, p) in w_sim.table(&catalog) {
        println!("  {p:.4}  {text}");
    }
    assert!(
        tables_close(
            &h_old.table(&e_h_old.program().catalog),
            &w_sim.table(&catalog)
        ),
        "the rewriting makes the new semantics simulate the old one"
    );
    println!("\n✓ all semantic relationships of Example 1.1 / §6.2 verified exactly");
}
