//! §6.3 of the paper: termination behavior of GDatalog programs.
//!
//! * Weakly acyclic programs terminate on **all** chase paths (Thm. 6.3).
//! * A cyclic program sampling a *continuous* distribution almost surely
//!   never terminates: fresh samples collide with existing facts with
//!   probability zero, so the rule is applicable forever.
//! * A cyclic program sampling a *discrete* distribution can terminate
//!   almost surely: samples collide with already-present values with
//!   positive probability, extinguishing the process — the open direction
//!   the paper flags as future work.
//!
//! Run with `cargo run --example termination`.

use gdatalog::engine::RunOutcome;
use gdatalog::prelude::*;
use gdatalog::stats::Summary;

fn main() {
    // --- Weakly acyclic ⇒ terminates (Thm. 6.3) ---------------------------
    let wa = Session::from_source(
        r#"
        rel City(symbol, real) input.
        City(gotham, 0.3).
        Earthquake(C, Flip<0.1>) :- City(C, R).
        Trig(C, Flip<0.6>) :- Earthquake(C, 1).
        "#,
        SemanticsMode::Grohe,
    )
    .unwrap();
    println!(
        "burglary fragment: weakly acyclic = {}",
        wa.program().weakly_acyclic()
    );
    let pdb = wa.eval().sample(2_000).seed(1).pdb().unwrap();
    println!(
        "  {} runs, errors (non-terminated): {}",
        pdb.runs(),
        pdb.errors()
    );
    assert_eq!(pdb.errors(), 0);

    // --- Continuous cycle: a.s. non-termination ---------------------------
    let cont = Session::from_source(
        r#"
        C(0.0).
        C(Normal<V, 1.0>) :- C(V).
        "#,
        SemanticsMode::Grohe,
    )
    .unwrap();
    println!(
        "\ncontinuous chain: weakly acyclic = {}",
        cont.program().weakly_acyclic()
    );
    println!("  step budget → fraction of runs still alive:");
    for budget in [10usize, 50, 200] {
        let pdb = cont
            .eval()
            .sample(200)
            .seed(2)
            .max_depth(budget)
            .pdb()
            .unwrap();
        let alive = pdb.errors() as f64 / pdb.runs() as f64;
        println!("    budget {budget:>4}: {alive:.2}");
        assert!(
            (alive - 1.0).abs() < 1e-9,
            "continuous cycle must never terminate"
        );
    }

    // --- Discrete cycle: terminates a.s. despite not being weakly acyclic -
    // Each present value X spawns one tagged Geometric<0.5 | X> experiment;
    // a sampled value already present adds nothing. The growth process dies
    // out almost surely.
    let disc = Session::from_source(
        r#"
        G(0).
        G(Geometric<0.5 | X>) :- G(X).
        "#,
        SemanticsMode::Grohe,
    )
    .unwrap();
    println!(
        "\ntagged geometric chain: weakly acyclic = {}",
        disc.program().weakly_acyclic()
    );
    let mut lengths = Vec::new();
    let mut exhausted = 0usize;
    for seed in 0..2_000u64 {
        let run = disc.eval().seed(seed).max_depth(50_000).trace().unwrap();
        match run.outcome {
            RunOutcome::Terminated => lengths.push(run.steps as f64),
            RunOutcome::BudgetExhausted => exhausted += 1,
        }
    }
    let s = Summary::of(&lengths);
    println!(
        "  2000 runs: terminated {} (mean steps {:.1}, max {:.0}), budget-hit {}",
        lengths.len(),
        s.mean(),
        s.max(),
        exhausted
    );
    assert_eq!(
        exhausted, 0,
        "the discrete chain terminates a.s. in practice"
    );

    // And exact enumeration quantifies the termination mass by depth.
    let worlds = disc
        .eval()
        .exact()
        .keep_aux(true)
        .max_depth(14)
        .support_tol(1e-6)
        // Prune paths below 1e-7 into the deficit: keeps the tree finite
        // (each sample branches over ~20 outcomes).
        .min_path_prob(1e-7)
        .worlds()
        .unwrap();
    println!(
        "  exact (depth ≤ 14): terminated mass {:.5}, unresolved mass {:.5}, truncated {:.7}",
        worlds.mass(),
        worlds.deficit().nontermination,
        worlds.deficit().truncation,
    );
    assert!(worlds.mass() > 0.8, "most mass terminates quickly");
}
