//! Conditioning end-to-end: posterior diagnosis in a burglary-style
//! network, with hard evidence, soft (likelihood) evidence, and the
//! evidence/ESS diagnostics.
//!
//! The model is the classic alarm network: earthquakes and burglaries
//! both trigger alarms, and a noisy seismometer reads a continuous value
//! whose mean depends on whether a quake happened. We ask the posterior
//! question every monitoring system asks: *given what we observed, what
//! probably caused it?*
//!
//! Run with `cargo run --example posterior_diagnosis`.

use gdatalog::prelude::*;

const PROGRAM: &str = r#"
    rel House(symbol) input.
    House(h1). House(h2).

    Quake(Flip<0.05>) :- true.
    Burglary(H, Flip<0.1>) :- House(H).

    Trig(H, Flip<0.6>) :- House(H), Quake(1).
    Trig(H, Flip<0.9>) :- Burglary(H, 1).
    Alarm(H) :- Trig(H, 1).

    % A seismometer: its reading is centered at 3.0 under a quake and at
    % 0.0 otherwise (unit variance). Tabulated, as GDatalog has no
    % arithmetic built-ins.
    SeismoMean(1, 3.0).
    SeismoMean(0, 0.0).
"#;

fn main() {
    let session = Session::from_source(PROGRAM, SemanticsMode::Grohe).expect("compiles");
    let quake = session.program().catalog.require("Quake").expect("Quake");
    let burglary = session
        .program()
        .catalog
        .require("Burglary")
        .expect("Burglary");
    let quake_fact = Fact::new(quake, tuple![1i64]);
    let burgled_h1 = Fact::new(burglary, tuple!["h1", 1i64]);

    // ---- Priors ---------------------------------------------------------
    let p_quake = session.eval().exact().marginal(&quake_fact).expect("ok");
    let p_burgl = session.eval().exact().marginal(&burgled_h1).expect("ok");
    println!("prior      P(quake) = {p_quake:.4}   P(burglary h1) = {p_burgl:.4}");

    // ---- Hard evidence: h1's alarm is ringing ---------------------------
    let given_alarm = || session.eval().exact().given("Alarm(h1).");
    let q = given_alarm().marginal(&quake_fact).expect("ok");
    let b = given_alarm().marginal(&burgled_h1).expect("ok");
    let ev = given_alarm().evidence().expect("ok");
    println!(
        "| alarm h1  P(quake) = {q:.4}   P(burglary h1) = {b:.4}   (P(evidence) = {:.4})",
        ev.mass
    );

    // ---- Both alarms: the shared-cause explanation takes over -----------
    let given_both = || session.eval().exact().given("Alarm(h1). Alarm(h2).");
    let q2 = given_both().marginal(&quake_fact).expect("ok");
    let b2 = given_both().marginal(&burgled_h1).expect("ok");
    println!("| both alarms  P(quake) = {q2:.4}   P(burglary h1) = {b2:.4}");

    // ---- Soft evidence: a seismometer reading of 2.4 --------------------
    // The likelihood statement reweights each world by the Gaussian
    // density of the reading around the world's own mean.
    let seismo = "Normal<M, 1.0> == 2.4 :- Quake(Q), SeismoMean(Q, M).";
    let q3 = session
        .eval()
        .exact()
        .given("Alarm(h1).")
        .given(seismo)
        .marginal(&quake_fact)
        .expect("ok");
    println!("| alarm h1 + seismo 2.4  P(quake) = {q3:.4}");

    // ---- The same posterior by likelihood-weighted Monte-Carlo ----------
    let mc = session
        .eval()
        .sample(100_000)
        .seed(7)
        .threads(4)
        .given("Alarm(h1).")
        .given(seismo)
        .marginal(&quake_fact)
        .expect("ok");
    let diag = session
        .eval()
        .sample(100_000)
        .seed(7)
        .threads(4)
        .given("Alarm(h1).")
        .given(seismo)
        .evidence()
        .expect("ok");
    println!(
        "  (LW-MC, 100k runs: P(quake) = {mc:.4}, surviving runs = {}, ESS = {:.0})",
        diag.worlds, diag.ess
    );
    assert!((mc - q3).abs() < 0.05, "MC posterior tracks exact");
    assert!(q2 > q && b2 < b, "a shared cause explains both alarms away");
}
