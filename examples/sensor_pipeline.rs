//! A realistic continuous-data scenario from the paper's introduction:
//! *noisy sensor measurements* as an uncertain-data model.
//!
//! Each device reading is perturbed by Gaussian sensor noise whose scale
//! depends on the sensor model; cheap sensors additionally drop readings at
//! random. Downstream, a deterministic rule classifies rooms as overheated
//! when any surviving perturbed reading exceeds a threshold — a relational
//! query over the generated continuous PDB (Fact 2.6).
//!
//! Run with `cargo run --example sensor_pipeline`.

use gdatalog::pdb::{CountOp, Event};
use gdatalog::prelude::*;
use gdatalog::stats::Summary;

const PROGRAM: &str = r#"
    rel Reading(symbol, symbol, real) input.     % room, sensor model, raw value
    rel NoiseModel(symbol, real) input.          % sensor model, noise variance
    rel DropRate(symbol, real) input.            % sensor model, P(drop)

    NoiseModel(precise, 0.04).
    NoiseModel(cheap, 1.0).
    DropRate(precise, 0.01).
    DropRate(cheap, 0.2).

    Reading(kitchen, cheap, 21.0).
    Reading(kitchen, precise, 21.3).
    Reading(server_room, cheap, 29.4).
    Reading(server_room, precise, 29.9).
    Reading(lab, cheap, 24.0).

    % Each reading survives with probability 1 − drop rate …
    Kept(Room, Model, Raw, Flip<Keep>) :- Reading(Room, Model, Raw), KeepProb(Model, Keep).
    KeepProb(Model, Keep) :- DropRate(Model, D), Complement(D, Keep).
    % (complement is tabulated since GDatalog has no arithmetic built-ins)
    Complement(0.01, 0.99).
    Complement(0.2, 0.8).

    % … and surviving readings are perturbed by model-specific noise.
    Measured(Room, Normal<Raw, S2>) :- Kept(Room, Model, Raw, 1), NoiseModel(Model, S2).

    % Overheat alert: handled downstream by a measurable event (see below),
    % since thresholds on reals are σ-algebra generators, not Datalog.
"#;

fn main() {
    let session = Session::from_source(PROGRAM, SemanticsMode::Grohe).expect("valid program");
    let program = session.program();
    println!("weakly acyclic: {}", program.weakly_acyclic());

    let pdb = session
        .eval()
        .sample(20_000)
        .seed(99)
        .threads(4)
        .pdb()
        .expect("sampling succeeds");
    println!(
        "worlds sampled: {} (all terminated: {})",
        pdb.runs(),
        pdb.errors() == 0
    );

    let measured = program.catalog.require("Measured").expect("declared");

    // Measurable event: "some measured value in the room exceeds 28.5°C".
    // This is a counting event C(F, ≥1) with F an interval fact set —
    // exactly the σ-algebra generators of §2.3.
    println!("\nroom         P(overheat > 28.5°C)   mean measured");
    for room in ["kitchen", "server_room", "lab"] {
        let hot = FactSet {
            rel: measured,
            cols: vec![
                ColPred::Eq(Value::sym(room)),
                ColPred::Range {
                    lo: 28.5,
                    hi: f64::INFINITY,
                },
            ],
        };
        // Streamed over a fresh 20k-run evaluation: the event probability
        // folds run-by-run, no per-run instance is retained.
        let p_hot = session
            .eval()
            .sample(20_000)
            .seed(99)
            .threads(4)
            .probability(&Event::Count {
                set: hot.clone(),
                op: CountOp::AtLeast,
                n: 1,
            })
            .expect("sampling succeeds");
        let mut vals = Vec::new();
        for world in pdb.samples() {
            for t in world.relation(measured) {
                if t[0] == Value::sym(room) {
                    vals.push(t[1].as_f64().expect("real column"));
                }
            }
        }
        let s = Summary::of(&vals);
        println!("{room:<12} {p_hot:<22.4} {:.2}", s.mean());
    }

    // Sanity: the server room overheats almost surely when its readings
    // survive; the kitchen practically never.
    let hot_server = FactSet {
        rel: measured,
        cols: vec![
            ColPred::Eq(Value::sym("server_room")),
            ColPred::Range {
                lo: 28.5,
                hi: f64::INFINITY,
            },
        ],
    };
    let hot_kitchen = FactSet {
        rel: measured,
        cols: vec![
            ColPred::Eq(Value::sym("kitchen")),
            ColPred::Range {
                lo: 28.5,
                hi: f64::INFINITY,
            },
        ],
    };
    assert!(pdb.estimate(|d| hot_server.count_in(d) >= 1) > 0.9);
    assert!(pdb.estimate(|d| hot_kitchen.count_in(d) >= 1) < 0.01);
    println!("\n✓ noisy-sensor pipeline behaves as modeled");
}
