//! Example 3.5 of the paper: sampling people's heights from per-country
//! normal distributions — a genuinely *continuous* GDatalog program, which
//! is exactly what the paper's semantics adds over Bárány et al.
//!
//! The program joins a person table against per-country moments and samples
//! `PHeight(p, Normal<µ, σ²>)`. We draw many Monte-Carlo worlds and verify,
//! per country, that the sampled heights pass a Kolmogorov–Smirnov test
//! against the target normal CDF.
//!
//! Run with `cargo run --example heights`.

use gdatalog::prelude::*;
use gdatalog::stats::{ks_one_sample, Summary};

const PROGRAM: &str = r#"
    rel PCountry(symbol, symbol) input.
    rel CMoments(symbol, real, real) input.

    CMoments(nl, 183.8, 49.0).
    CMoments(pe, 165.2, 36.0).

    PCountry(ada, nl).
    PCountry(bas, nl).
    PCountry(carlos, pe).

    PHeight(P, Normal<Mu, S2>) :- PCountry(P, C), CMoments(C, Mu, S2).
"#;

fn main() {
    let session = Session::from_source(PROGRAM, SemanticsMode::Grohe).expect("valid program");
    let program = session.program();
    let pheight = program.catalog.require("PHeight").expect("declared");

    // Continuous programs cannot be enumerated exactly…
    assert!(session.eval().exact().worlds().is_err());

    // …but the chase Markov process samples them directly. (With no
    // explicit backend the builder auto-picks Monte-Carlo here, since the
    // program is continuous.)
    let pdb = session
        .eval()
        .sample(5_000)
        .seed(3)
        .threads(4)
        .pdb()
        .expect("sampling succeeds");
    println!(
        "sampled {} worlds, every run terminated: {}",
        pdb.runs(),
        pdb.errors() == 0
    );

    // Collect per-person height samples across worlds.
    for (person, mu, sigma2) in [
        ("ada", 183.8, 49.0f64),
        ("bas", 183.8, 49.0),
        ("carlos", 165.2, 36.0),
    ] {
        let mut heights = Vec::new();
        for world in pdb.samples() {
            for t in world.relation(pheight) {
                if t[0] == Value::sym(person) {
                    heights.push(t[1].as_f64().expect("real column"));
                }
            }
        }
        let s = Summary::of(&heights);
        let sigma = sigma2.sqrt();
        let ks = ks_one_sample(&heights, |x| {
            gdatalog::dist::special::std_normal_cdf((x - mu) / sigma)
        });
        println!(
            "{person:<7} n={} mean={:.2} (target {mu}) sd={:.2} (target {sigma:.2}) KS p={:.3}",
            s.count(),
            s.mean(),
            s.std_dev(),
            ks.p_value
        );
        assert!(
            ks.passes(1e-4),
            "{person}: sampled heights must match Normal({mu}, {sigma2})"
        );
    }
}
