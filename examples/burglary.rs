//! Example 3.4 of the paper: the earthquake/burglary/alarm network
//! (originally Figure 3 of Bárány et al., TODS 2017), evaluated exactly
//! and by Monte-Carlo, and checked against the closed-form alarm
//! probability `P(Alarm(x)) = 1 − (1 − 0.1·0.6)(1 − r·0.9)`.
//!
//! Run with `cargo run --example burglary`.

use gdatalog::prelude::*;

const PROGRAM: &str = r#"
    rel City(symbol, real) input.
    rel House(symbol, symbol) input.
    rel Business(symbol, symbol) input.

    City(gotham, 0.3).
    City(metropolis, 0.1).
    House(h1, gotham).
    House(h2, gotham).
    Business(b1, metropolis).

    Earthquake(C, Flip<0.1>) :- City(C, R).
    Unit(H, C) :- House(H, C).
    Unit(B, C) :- Business(B, C).
    Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
    Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
    Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
    Alarm(X) :- Trig(X, 1).
"#;

fn main() {
    let session = Session::from_source(PROGRAM, SemanticsMode::Grohe).expect("valid program");
    let catalog = &session.program().catalog;
    let alarm = catalog.require("Alarm").expect("declared");

    println!("weakly acyclic: {}", session.program().weakly_acyclic());

    // Exact enumeration of all possible worlds.
    let worlds = session.eval().exact().worlds().expect("discrete program");
    println!("exact worlds: {} (mass {:.9})", worlds.len(), worlds.mass());

    // Monte-Carlo estimate for comparison (saturating variant: the
    // semi-naive Datalog engine fast-forwards deterministic rules between
    // samples; same distribution by Theorem 6.1).
    let pdb = session
        .eval()
        .sample(20_000)
        .seed(7)
        .threads(4)
        .variant(ChaseVariant::Saturating)
        .pdb()
        .expect("sampling succeeds");

    println!("\nunit      city rate  P(alarm) exact  closed form  MC estimate");
    for (unit, rate) in [("h1", 0.3), ("h2", 0.3), ("b1", 0.1)] {
        let fact = Fact::new(alarm, Tuple::from(vec![Value::sym(unit)]));
        let exact = worlds.marginal(&fact);
        let closed = 1.0 - (1.0 - 0.1 * 0.6) * (1.0 - rate * 0.9);
        let mc = pdb.marginal(&fact);
        println!("{unit:<9} {rate:<10} {exact:<15.6} {closed:<12.6} {mc:.6}");
        assert!(
            (exact - closed).abs() < 1e-9,
            "exact must match closed form"
        );
        assert!(
            (mc - closed).abs() < 0.02,
            "MC must approximate closed form"
        );
    }

    // The correlation the network models: units in the same city share the
    // earthquake trigger, so alarms are positively correlated.
    let a1 = Fact::new(alarm, Tuple::from(vec![Value::sym("h1")]));
    let a2 = Fact::new(alarm, Tuple::from(vec![Value::sym("h2")]));
    let p_both =
        worlds.probability(|d| d.contains(a1.rel, &a1.tuple) && d.contains(a2.rel, &a2.tuple));
    let p1 = worlds.marginal(&a1);
    let p2 = worlds.marginal(&a2);
    println!(
        "\nP(alarm h1 ∧ alarm h2) = {:.6} vs independent product {:.6} (correlation via shared earthquake)",
        p_both,
        p1 * p2
    );
    assert!(
        p_both > p1 * p2,
        "same-city alarms must be positively correlated"
    );
}
