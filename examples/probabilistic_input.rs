//! Theorems 4.8/5.5/6.2 in action: the *input* is itself a probabilistic
//! database, and the GDatalog program acts as a stochastic kernel
//! transforming an input SPDB into an output SPDB.
//!
//! Scenario: a tuple-independent input PDB over sensor deployments (each
//! sensor is installed with some probability); the program then models the
//! sensors' failure behavior generatively. The output SPDB mixes both
//! layers of uncertainty.
//!
//! Run with `cargo run --release --example probabilistic_input`.

use gdatalog::prelude::*;

const PROGRAM: &str = r#"
    rel Sensor(symbol, real) input.     % sensor, failure probability
    Fault(S, Flip<P>) :- Sensor(S, P).
    Down(S) :- Fault(S, 1).
    AnyDown(yes) :- Down(S).
"#;

fn main() {
    let session = Session::from_source(PROGRAM, SemanticsMode::Grohe).expect("valid program");
    let catalog = session.program().catalog.clone();
    let sensor = catalog.require("Sensor").expect("declared");
    let down = catalog.require("Down").expect("declared");
    let anydown = catalog.require("AnyDown").expect("declared");

    // Tuple-independent input PDB: sensor a installed w.p. 0.8, sensor b
    // w.p. 0.5 — four possible input worlds.
    let a = Tuple::from(vec![Value::sym("a"), Value::real(0.1)]);
    let b = Tuple::from(vec![Value::sym("b"), Value::real(0.2)]);
    let mut input = PossibleWorlds::new();
    for (has_a, has_b) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut world = Instance::new();
        let mut p = 1.0;
        p *= if has_a { 0.8 } else { 0.2 };
        p *= 0.5; // P(B) = 1/2 regardless of has_b
        let _ = has_b;
        if has_a {
            world.insert(sensor, a.clone());
        }
        if has_b {
            world.insert(sensor, b.clone());
        }
        input.add(world, p);
    }
    println!(
        "input PDB: {} worlds, mass {:.6}",
        input.len(),
        input.mass()
    );

    // The program as a stochastic kernel: input SPDB ↦ output SPDB.
    let out = session.eval().transform(&input).expect("discrete program");
    println!(
        "output SPDB: {} worlds, mass {:.9}\n",
        out.len(),
        out.mass()
    );

    // Marginals mix installation and failure uncertainty:
    // P(Down(a)) = P(installed) · P(fails) = 0.8 · 0.1.
    let down_a = Fact::new(down, Tuple::from(vec![Value::sym("a")]));
    let down_b = Fact::new(down, Tuple::from(vec![Value::sym("b")]));
    println!(
        "P(Down(a)) = {:.4} (analytic 0.0800)",
        out.marginal(&down_a)
    );
    println!(
        "P(Down(b)) = {:.4} (analytic 0.1000)",
        out.marginal(&down_b)
    );
    assert!((out.marginal(&down_a) - 0.08).abs() < 1e-12);
    assert!((out.marginal(&down_b) - 0.10).abs() < 1e-12);

    // P(AnyDown) = 1 − (1 − 0.08)(1 − 0.10) by independence across sensors.
    let any = Fact::new(anydown, Tuple::from(vec![Value::sym("yes")]));
    let expect = 1.0 - (1.0 - 0.08) * (1.0 - 0.10);
    println!(
        "P(AnyDown)  = {:.4} (analytic {expect:.4})",
        out.marginal(&any)
    );
    assert!((out.marginal(&any) - expect).abs() < 1e-12);

    // Conditioning (the PPDL direction, §7): observe that some sensor is
    // down; the posterior probability that sensor a is installed rises.
    let prior_a_installed =
        out.probability(|d| d.relation(sensor).iter().any(|t| t[0] == Value::sym("a")));
    let posterior = out
        .condition(|d| d.relation_len(anydown) == 1)
        .expect("positive-probability event")
        .probability(|d| d.relation(sensor).iter().any(|t| t[0] == Value::sym("a")));
    println!(
        "\nP(a installed) = {prior_a_installed:.4}; P(a installed | some sensor down) = {posterior:.4}"
    );
    assert!(posterior > prior_a_installed);
    println!("\n✓ SPDB-to-SPDB transformation verified (Thms. 4.8/5.5/6.2)");
}
