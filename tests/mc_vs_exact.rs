//! Integration test: Monte-Carlo sampling converges to the exact world
//! table (chi-square GOF on the world distribution, plus marginals).

use std::collections::BTreeMap;

use gdatalog::prelude::*;
use gdatalog::stats::chi_square_gof;

#[test]
fn mc_matches_exact_world_distribution() {
    let src = r#"
        rel City(symbol, real) input.
        City(gotham, 0.3).
        Earthquake(C, Flip<0.1>) :- City(C, R).
        Trig(C, Flip<0.6>) :- Earthquake(C, 1).
        Alarm(C) :- Trig(C, 1).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let exact = engine.eval().exact().worlds().unwrap();
    let pdb = engine
        .eval()
        .sample(60_000)
        .seed(31)
        .threads(4)
        .pdb()
        .unwrap();
    assert_eq!(pdb.errors(), 0);

    // Count sampled worlds against the exact probabilities.
    let empirical: BTreeMap<Instance, f64> = pdb.to_distribution();
    let mut observed = Vec::new();
    let mut probs = Vec::new();
    for (world, p) in exact.iter() {
        let freq = empirical.get(world).copied().unwrap_or(0.0);
        observed.push((freq * pdb.runs() as f64).round() as u64);
        probs.push(p);
    }
    // Every sampled world must be one of the exact worlds.
    let total_obs: u64 = observed.iter().sum();
    assert_eq!(total_obs, pdb.runs() as u64, "no spurious worlds sampled");
    let r = chi_square_gof(&observed, &probs, 5.0);
    assert!(r.passes(1e-4), "X² = {}, p = {}", r.statistic, r.p_value);
}

#[test]
fn mc_parallel_variant_matches_exact_too() {
    let src = "R(Flip<0.5>) :- true. S(Flip<0.25>) :- true.";
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let exact = engine.eval().exact().worlds().unwrap();
    let pdb = engine
        .eval()
        .sample(40_000)
        .seed(77)
        .variant(ChaseVariant::Parallel)
        .pdb()
        .unwrap();
    let empirical = pdb.to_distribution();
    let mut observed = Vec::new();
    let mut probs = Vec::new();
    for (world, p) in exact.iter() {
        observed.push(
            (empirical.get(world).copied().unwrap_or(0.0) * pdb.runs() as f64).round() as u64,
        );
        probs.push(p);
    }
    let r = chi_square_gof(&observed, &probs, 5.0);
    assert!(r.passes(1e-4), "X² = {}, p = {}", r.statistic, r.p_value);
}

#[test]
fn empirical_mass_estimates_spdb_mass() {
    // Tagged geometric chain: exact enumeration bounds the termination
    // mass; the MC mass estimate must be compatible.
    let src = r#"
        G(0).
        G(Geometric<0.5 | X>) :- G(X).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let exact = engine
        .eval()
        .exact()
        .policy(PolicyKind::Canonical)
        .keep_aux(true)
        .max_depth(16)
        .support_tol(1e-6)
        .min_path_prob(1e-6)
        .worlds()
        .unwrap();
    // Termination mass is at least the exactly-terminated mass.
    let lower = exact.mass();
    assert!(lower > 0.8);

    let pdb = engine
        .eval()
        .sample(5_000)
        .max_depth(5_000)
        .seed(13)
        .pdb()
        .unwrap();
    let mc_mass = pdb.mass();
    assert!(
        mc_mass >= lower - 0.02,
        "MC mass {mc_mass} below exact lower bound {lower}"
    );
}
