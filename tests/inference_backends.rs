//! Cross-backend statistical acceptance harness (PR 8): on a panel of
//! discrete conditioned programs, the exact enumerator, the
//! likelihood-weighted Monte-Carlo path (at 1/2/4 workers), and the
//! Metropolis-Hastings chain must all answer the **same posterior**.
//!
//! Agreement is checked with an explicit z-score bound rather than a
//! hand-tuned epsilon: a sampling backend's estimate must sit within
//! `Z · se` of the exactly enumerated value, where
//! `se = sqrt(p·(1−p)/n_eff)` uses the pass's own effective sample size
//! (likelihood weighting) or a conservatively discounted chain length
//! (MH, which is autocorrelated). Failures print both estimates and the
//! tolerance arithmetic, so a statistical regression is diagnosable from
//! the assertion message alone.

use gdatalog::data::canonical_text;
use gdatalog::pdb::{DeficitKind, WorldSink};
use gdatalog::prelude::*;

/// Number of standard errors a seeded estimate may sit from the exact
/// answer before the harness fails. At Z = 5 a correct backend trips one
/// check in ~3.5 million runs, so a failure is evidence, not noise.
const Z: f64 = 5.0;

/// MH chains are autocorrelated, so their `K` kept states are worth far
/// fewer independent draws. Dividing by 20 is a deliberately conservative
/// integrated-autocorrelation-time allowance for single-site chains on
/// these few-site programs.
const MH_AUTOCORR_DISCOUNT: f64 = 20.0;

struct Case {
    name: &'static str,
    program: &'static str,
    given: &'static str,
    /// Queried relation and tuple, the posterior marginal under test.
    rel: &'static str,
    args: &'static [i64],
}

/// Six discrete conditioned programs spanning the shapes that have bitten
/// before: diagnostic chains, joint coins, multi-step noisy relays,
/// weighted categorical choice, soft evidence, and disjunctive structure.
fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "diagnosis",
            program: r#"
                Quake(Flip<0.2>) :- true.
                Trig(Flip<0.7>) :- Quake(1).
                Trig(Flip<0.1>) :- Quake(0).
                Alarm() :- Trig(1).
            "#,
            given: "Alarm().",
            rel: "Quake",
            args: &[1],
        },
        // NB the coupling between A and B routes through the rule
        // structure (flipping A re-fires a *different* B rule, i.e. a
        // fresh sampling site), which keeps single-site MH ergodic. Two
        // *independent* coins under a hard equality constraint would not
        // be: no single-site move can cross between (0,0) and (1,1) —
        // see the ergodicity note in gdatalog_core::mcmc.
        Case {
            name: "agreeing-coins",
            program: r#"
                A(Flip<0.3>) :- true.
                B(Flip<0.7>) :- A(1).
                B(Flip<0.2>) :- A(0).
                Same() :- A(1), B(1).
                Same() :- A(0), B(0).
            "#,
            given: "Same().",
            rel: "A",
            args: &[1],
        },
        Case {
            name: "noisy-relay",
            program: r#"
                S0(Flip<0.5>) :- true.
                S1(Flip<0.8>) :- S0(1).
                S1(Flip<0.2>) :- S0(0).
                S2(Flip<0.8>) :- S1(1).
                S2(Flip<0.2>) :- S1(0).
            "#,
            given: "S2(1).",
            rel: "S0",
            args: &[1],
        },
        Case {
            name: "weighted-die",
            program: r#"
                Die(Categorical<1, 1.0, 2, 2.0, 3, 3.0, 4, 4.0, 5, 5.0, 6, 6.0>) :- true.
                High() :- Die(5).
                High() :- Die(6).
            "#,
            given: "High().",
            rel: "Die",
            args: &[6],
        },
        Case {
            name: "soft-evidence",
            program: "Quake(Flip<0.2>) :- true.",
            // Likelihood 0.9 under a quake, 0.3 otherwise: posterior
            // 0.2·0.9 / (0.2·0.9 + 0.8·0.3) = 3/7.
            given: "Flip<0.9> == 1 :- Quake(1). Flip<0.3> == 1 :- Quake(0).",
            rel: "Quake",
            args: &[1],
        },
        Case {
            name: "two-path-reachability",
            program: r#"
                Edge01(Flip<0.6>) :- true.
                Edge12(Flip<0.6>) :- true.
                Edge02(Flip<0.2>) :- true.
                Reach() :- Edge02(1).
                Reach() :- Edge01(1), Edge12(1).
            "#,
            given: "Reach().",
            rel: "Edge01",
            args: &[1],
        },
    ]
}

fn query_fact(session: &Session, rel: &str, args: &[i64]) -> Fact {
    let rel = session.program().catalog.require(rel).unwrap();
    Fact::new(rel, args.iter().copied().map(Value::int).collect())
}

/// Answers the case's marginal through the multiplexed path so the pass's
/// evidence summary (and with it the achieved ESS) rides along.
fn posterior(eval: Evaluation<'_>, fact: &Fact) -> (f64, EvidenceSummary) {
    let queries = QuerySet::new().marginal(fact);
    let answers = eval.answer(&queries).unwrap();
    let p = answers.get(0).unwrap().as_probability().unwrap();
    (p, answers.evidence())
}

/// The z-score agreement check. `n_eff` is the number of effectively
/// independent draws behind `estimate`.
fn assert_within_z(case: &str, backend: &str, estimate: f64, exact: f64, n_eff: f64) {
    let n_eff = n_eff.max(1.0);
    let se = (exact * (1.0 - exact) / n_eff).sqrt();
    // A tiny absolute floor keeps the bound meaningful when the exact
    // posterior sits at 0 or 1 (se collapses to zero there).
    let bound = Z * se + 1e-4;
    assert!(
        (estimate - exact).abs() <= bound,
        "{case}/{backend}: estimate {estimate:.6} vs exact {exact:.6}: \
         |Δ| = {:.6} exceeds Z·se + floor = {Z}·sqrt({exact:.6}·{:.6}/{n_eff:.1}) + 1e-4 \
         = {bound:.6}",
        (estimate - exact).abs(),
        1.0 - exact,
    );
}

#[test]
fn exact_lw_and_mh_agree_on_every_panel_program() {
    for case in cases() {
        let session = Session::from_source(case.program, SemanticsMode::Grohe).unwrap();
        let fact = query_fact(&session, case.rel, case.args);

        // The reference: sequential exact enumeration, and its parallel
        // variant, which must agree to rounding at every worker count.
        let (exact, exact_ev) = posterior(session.eval().exact().given(case.given), &fact);
        assert!(
            exact_ev.mass > 0.0,
            "{}: panel evidence must be satisfiable",
            case.name
        );
        for threads in [1, 2, 4] {
            let (par, _) = posterior(
                session
                    .eval()
                    .exact_parallel()
                    .threads(threads)
                    .given(case.given),
                &fact,
            );
            assert!(
                (par - exact).abs() < 1e-9,
                "{}: exact-parallel@{threads} {par} vs exact {exact}",
                case.name
            );
        }

        // Likelihood weighting at 1, 2, and 4 workers: each pass is
        // z-checked against the enumerated posterior using its own
        // achieved effective sample size.
        for threads in [1, 2, 4] {
            let (lw, ev) = posterior(
                session
                    .eval()
                    .sample(40_000)
                    .seed(0xFEED)
                    .threads(threads)
                    .given(case.given),
                &fact,
            );
            assert!(ev.ess > 1.0, "{}: degenerate LW ESS {}", case.name, ev.ess);
            assert_within_z(case.name, &format!("lw@{threads}"), lw, exact, ev.ess);
        }

        // The MH chain, discounted for autocorrelation.
        let kept = 40_000usize;
        let (mh, ev) = posterior(
            session
                .eval()
                .mh(kept)
                .burn_in(1_000)
                .seed(0xBEEF)
                .given(case.given),
            &fact,
        );
        assert_eq!(
            ev.runs, kept,
            "{}: MH reports kept states as runs",
            case.name
        );
        assert!(
            ev.accept_rate.is_some(),
            "{}: MH pass must report its acceptance rate",
            case.name
        );
        assert_within_z(
            case.name,
            "mh",
            mh,
            exact,
            kept as f64 / MH_AUTOCORR_DISCOUNT,
        );
    }
}

#[test]
fn adaptive_sampling_reaches_its_ess_target_on_panel_programs() {
    for case in cases() {
        let session = Session::from_source(case.program, SemanticsMode::Grohe).unwrap();
        let fact = query_fact(&session, case.rel, case.args);
        let (exact, _) = posterior(session.eval().exact().given(case.given), &fact);
        let target = 2_000.0;
        let (adaptive, ev) = posterior(
            session
                .eval()
                .sample_until(EssTarget::new(target))
                .seed(7)
                .given(case.given),
            &fact,
        );
        assert!(
            ev.ess >= target,
            "{}: adaptive pass stopped at ESS {:.1} < target {target}",
            case.name,
            ev.ess
        );
        assert!(
            ev.runs >= ev.ess as usize,
            "{}: ESS {:.1} cannot exceed the {} runs that produced it",
            case.name,
            ev.ess,
            ev.runs
        );
        assert_within_z(case.name, "adaptive-lw", adaptive, exact, ev.ess);
    }
}

/// Records every **log-space** observation as
/// `(canonical world text, log-weight bits)`, so conditioned weighted
/// streams can be compared bitwise as multisets across worker counts.
struct LogRecordingSink {
    catalog: Catalog,
    rows: Vec<(String, u64)>,
    deficits: Vec<u64>,
}

impl WorldSink for LogRecordingSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        // Conditioned Monte-Carlo emits exclusively through observe_log
        // now; a linear observation here would mean the log-space
        // pipeline regressed somewhere.
        panic!(
            "conditioned stream delivered a linear observation ({}, {weight})",
            canonical_text(&world, &self.catalog)
        );
    }

    fn observe_log(&mut self, world: Instance, log_weight: f64) {
        self.rows
            .push((canonical_text(&world, &self.catalog), log_weight.to_bits()));
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, weight: f64) {
        self.deficits.push(weight.to_bits());
    }

    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        Some(Box::new(LogRecordingSink {
            catalog: self.catalog.clone(),
            rows: Vec::new(),
            deficits: Vec::new(),
        }))
    }

    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let other = forked
            .into_any()
            .downcast::<LogRecordingSink>()
            .expect("forked from self");
        self.rows.extend(other.rows);
        self.deficits.extend(other.deficits);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[test]
fn lw_log_weighted_stream_is_bit_identical_across_worker_counts() {
    for case in cases() {
        let session = Session::from_source(case.program, SemanticsMode::Grohe).unwrap();
        let catalog = session.program().catalog.clone();
        let stream = |threads: usize| {
            let mut sink = LogRecordingSink {
                catalog: catalog.clone(),
                rows: Vec::new(),
                deficits: Vec::new(),
            };
            session
                .eval()
                .sample(6_000)
                .seed(1234)
                .threads(threads)
                .given(case.given)
                .collect_into(&mut sink)
                .unwrap();
            let mut rows = sink.rows;
            rows.sort();
            rows
        };
        let reference = stream(1);
        assert!(!reference.is_empty(), "{}: empty stream", case.name);
        for threads in [2, 4] {
            assert_eq!(
                reference,
                stream(threads),
                "{}: the multiset of (world, log-weight) observations must \
                 be bit-identical at {threads} workers",
                case.name
            );
        }
        assert_eq!(reference, stream(1), "{}: repeat determinism", case.name);
    }
}

#[test]
fn mh_posterior_is_seed_reproducible_end_to_end() {
    let case = &cases()[0];
    let session = Session::from_source(case.program, SemanticsMode::Grohe).unwrap();
    let fact = query_fact(&session, case.rel, case.args);
    let run = || {
        session
            .eval()
            .mh(5_000)
            .burn_in(500)
            .thin(2)
            .seed(99)
            .given(case.given)
            .marginal(&fact)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.to_bits(), b.to_bits(), "same seed, same chain, same bits");
}
