//! The markdown integrity gate CI runs so the documentation suite cannot
//! rot silently: every code fence in the curated docs must be properly
//! closed and language-tagged (an untagged fence would be doctested as
//! Rust by rustdoc — almost never what a shell or JSON snippet intends),
//! and every relative link must point at a file that exists.

use std::path::{Path, PathBuf};

/// The documentation suite under the integrity gate. (Generated reports
/// like SNIPPETS.md / PAPERS.md are exempt: their content is quoted
/// material, not maintained documentation.)
fn curated_docs() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = vec![root.join("README.md")];
    for entry in std::fs::read_dir(root.join("docs")).expect("docs/ exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files.sort();
    files
}

/// Scans one document for fence problems; returns violations.
fn check_fences(text: &str, name: &str) -> Vec<String> {
    let mut problems = Vec::new();
    let mut open: Option<(usize, String)> = None;
    for (ix, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if !trimmed.starts_with("```") {
            continue;
        }
        let info = trimmed.trim_start_matches('`').trim();
        match open.take() {
            None => {
                if info.is_empty() {
                    problems.push(format!(
                        "{name}:{}: code fence without a language tag \
                         (rustdoc would doctest it as Rust)",
                        ix + 1
                    ));
                }
                open = Some((ix + 1, info.to_string()));
            }
            Some(_) => {
                if !info.is_empty() {
                    problems.push(format!(
                        "{name}:{}: closing fence carries an info string `{info}` \
                         (likely an unclosed block above)",
                        ix + 1
                    ));
                }
            }
        }
    }
    if let Some((line, info)) = open {
        problems.push(format!(
            "{name}:{line}: unclosed ```{info} fence runs to end of file"
        ));
    }
    problems
}

/// Extracts `[text](target)` link targets outside code fences.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b']' && i + 1 < bytes.len() && bytes[i + 1] == b'(' {
                if let Some(close) = line[i + 2..].find(')') {
                    targets.push(line[i + 2..i + 2 + close].to_string());
                    i += 2 + close;
                }
            }
            i += 1;
        }
    }
    targets
}

#[test]
fn code_fences_are_closed_and_tagged() {
    let mut problems = Vec::new();
    for path in curated_docs() {
        let text = std::fs::read_to_string(&path).expect("doc readable");
        problems.extend(check_fences(&text, &path.display().to_string()));
    }
    assert!(
        problems.is_empty(),
        "fence violations:\n{}",
        problems.join("\n")
    );
}

#[test]
fn relative_links_resolve() {
    let mut problems = Vec::new();
    for path in curated_docs() {
        let text = std::fs::read_to_string(&path).expect("doc readable");
        let dir = path.parent().expect("doc has a parent dir");
        for target in link_targets(&text) {
            // External links and intra-page anchors are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            let file_part = target.split('#').next().expect("non-empty split");
            if !dir.join(file_part).exists() {
                problems.push(format!(
                    "{}: broken relative link `{target}`",
                    path.display()
                ));
            }
        }
    }
    assert!(
        problems.is_empty(),
        "broken links:\n{}",
        problems.join("\n")
    );
}

#[test]
fn tutorial_and_semantics_are_wired_into_doctests() {
    // The acceptance criterion "all tutorial code blocks compile" is
    // enforced by rustdoc *because* the files are included as doc
    // modules; this guards the wiring itself.
    let lib = std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("src/lib.rs"))
        .expect("lib.rs readable");
    for included in ["docs/TUTORIAL.md", "docs/SEMANTICS.md"] {
        assert!(
            lib.contains(&format!("include_str!(\"../{included}\")")),
            "{included} must be included as a rustdoc module so its code \
             blocks run under `cargo test --doc`"
        );
    }
    // And the tutorial actually contains runnable Rust blocks.
    let tutorial =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("docs/TUTORIAL.md"))
            .expect("tutorial readable");
    assert!(
        tutorial.matches("```rust").count() >= 4,
        "the tutorial should stay example-driven"
    );
}
