//! Integration test: measurable queries on the generated SPDBs (Fact 2.6)
//! — relational algebra and aggregation evaluated per world over the exact
//! burglary table, cross-checked against marginals and counting events.

use std::collections::BTreeSet;

use gdatalog::pdb::{eval_query, eval_query_worlds, AggFun, ColPred, Event, FactSet, Query};
use gdatalog::prelude::*;

const SRC: &str = r#"
    rel City(symbol, real) input.
    rel House(symbol, symbol) input.
    City(gotham, 0.3).
    House(h1, gotham).
    House(h2, gotham).
    Earthquake(C, Flip<0.1>) :- City(C, R).
    Unit(H, C) :- House(H, C).
    Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
    Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
    Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
    Alarm(X) :- Trig(X, 1).
"#;

fn setup() -> (Engine, PossibleWorlds) {
    let engine = Engine::from_source(SRC, SemanticsMode::Grohe).unwrap();
    let worlds = engine.eval().exact().worlds().unwrap();
    (engine, worlds)
}

#[test]
fn query_distribution_agrees_with_marginal() {
    let (engine, worlds) = setup();
    let alarm = engine.program().catalog.require("Alarm").unwrap();
    // π over Alarm = the set of alarming units per world.
    let q = Query::Rel(alarm).project(vec![0]);
    let dist = eval_query_worlds(&q, &worlds);
    let total: f64 = dist.values().sum();
    assert!((total - worlds.mass()).abs() < 1e-9);
    // P(h1 ∈ answer) computed from the query distribution equals the
    // marginal of the Alarm(h1) fact.
    let h1 = Tuple::from(vec![Value::sym("h1")]);
    let p_from_query: f64 = dist
        .iter()
        .filter(|(ans, _)| ans.contains(&h1))
        .map(|(_, p)| p)
        .sum();
    let marginal = worlds.marginal(&Fact::new(alarm, h1));
    assert!((p_from_query - marginal).abs() < 1e-12);
}

#[test]
fn join_query_expresses_correlation() {
    let (engine, worlds) = setup();
    let alarm = engine.program().catalog.require("Alarm").unwrap();
    // Alarm ⋈ Alarm on nothing = cross product of alarming units; a world
    // has (h1, h2) in the product iff both alarms fired.
    let q = Query::Rel(alarm).join(Query::Rel(alarm), vec![]);
    let both = Tuple::from(vec![Value::sym("h1"), Value::sym("h2")]);
    let p_join: f64 = eval_query_worlds(&q, &worlds)
        .iter()
        .filter(|(ans, _)| ans.contains(&both))
        .map(|(_, p)| p)
        .sum();
    let p_event = worlds.probability(|d| {
        d.contains(alarm, &Tuple::from(vec![Value::sym("h1")]))
            && d.contains(alarm, &Tuple::from(vec![Value::sym("h2")]))
    });
    assert!((p_join - p_event).abs() < 1e-12);
    assert!(p_join > 0.0);
}

#[test]
fn aggregate_count_matches_counting_events() {
    let (engine, worlds) = setup();
    let alarm = engine.program().catalog.require("Alarm").unwrap();
    let q = Query::Rel(alarm).aggregate(vec![], AggFun::Count, 0);
    let dist = eval_query_worlds(&q, &worlds);
    // P(count = k) from the aggregate must equal P(C(Alarm, k)) from the
    // counting event — the paper's σ-algebra generators (§2.3).
    for k in 0..=2i64 {
        let target: BTreeSet<Tuple> = [Tuple::from(vec![Value::int(k)])].into_iter().collect();
        let p_agg = dist.get(&target).copied().unwrap_or_else(|| {
            // count = 0 yields an empty aggregate answer set.
            if k == 0 {
                dist.get(&BTreeSet::new()).copied().unwrap_or(0.0)
            } else {
                0.0
            }
        });
        let ev = Event::count_exactly(FactSet::whole_relation(alarm), k as usize);
        let p_ev = worlds.probability(|d| ev.eval(d));
        assert!(
            (p_agg - p_ev).abs() < 1e-12,
            "k = {k}: aggregate {p_agg} vs event {p_ev}"
        );
    }
}

#[test]
fn selection_with_interval_predicates() {
    let (engine, worlds) = setup();
    let burglary = engine.program().catalog.require("Burglary").unwrap();
    // σ_{flag = 1} π_{unit} over Burglary, on one representative world.
    let (world, _) = worlds.iter().last().unwrap();
    let q = Query::Rel(burglary)
        .select(vec![(2, ColPred::Range { lo: 0.5, hi: 1.5 })])
        .project(vec![0]);
    let direct: BTreeSet<Tuple> = world
        .relation(burglary)
        .iter()
        .filter(|t| t[2].as_f64().unwrap() >= 0.5)
        .map(|t| t.project(&[0]))
        .collect();
    assert_eq!(eval_query(&q, world), direct);
}

#[test]
fn conditioning_on_alarm_raises_burglary_probability() {
    let (engine, worlds) = setup();
    let alarm = engine.program().catalog.require("Alarm").unwrap();
    let burglary = engine.program().catalog.require("Burglary").unwrap();
    let h1 = Tuple::from(vec![Value::sym("h1")]);
    let burgled = Tuple::from(vec![Value::sym("h1"), Value::sym("gotham"), Value::int(1)]);

    let prior = worlds.probability(|d| d.contains(burglary, &burgled));
    let posterior = worlds
        .condition(|d| d.contains(alarm, &h1))
        .expect("alarm has positive probability")
        .probability(|d| d.contains(burglary, &burgled));
    // Observing the alarm must raise the burglary probability (explaining
    // away not withstanding: the alternative cause is rare).
    assert!(
        posterior > prior * 2.0,
        "prior {prior}, posterior {posterior}"
    );
}
