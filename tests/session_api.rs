//! API-equivalence suite for the Session/Evaluation surface: every builder
//! path must produce **bit-identical** results to the low-level chase
//! entry points it drives (exact and Monte-Carlo, single- and
//! multi-threaded), and the streaming statistic terminals must agree with
//! the materializing reference implementations.
//!
//! (Until 0.2.0 this suite compared the builder against the deprecated
//! `Engine::{enumerate, sample, …}` shims; those are gone, so the
//! reference side is now the public low-level functions themselves —
//! `enumerate_sequential`, `enumerate_parallel`, `sample_pdb`,
//! `run_sequential` — which is a strictly stronger check.)

use gdatalog::engine::{enumerate_parallel, enumerate_sequential, run_sequential, sample_pdb};
use gdatalog::pdb::{query_moments, MarginalSink, WorldSink};
use gdatalog::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BURGLARY: &str = r#"
    rel City(symbol, real) input.
    rel House(symbol, symbol) input.
    City(gotham, 0.3).
    House(h1, gotham).
    House(h2, gotham).
    Earthquake(C, Flip<0.1>) :- City(C, R).
    Unit(H, C) :- House(H, C).
    Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
    Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
    Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
    Alarm(X) :- Trig(X, 1).
"#;

/// A program with an infinite discrete support, so truncation deficits are
/// exercised by the equivalence checks too.
const GEOMETRIC: &str = "N(Geometric<0.5>) :- true. M(Geometric<0.3>) :- true.";

fn reference_exact(engine: &Engine, kind: PolicyKind, config: ExactConfig) -> PossibleWorlds {
    let mut policy = ChasePolicy::new(
        kind,
        &engine
            .program()
            .rules
            .iter()
            .filter(|r| r.is_existential())
            .map(|r| r.id)
            .collect::<Vec<_>>(),
    );
    enumerate_sequential(
        engine.program(),
        &engine.program().initial_instance,
        &mut policy,
        config,
    )
    .unwrap()
}

#[test]
fn exact_builder_bit_identical_to_enumerate_sequential() {
    for src in [BURGLARY, GEOMETRIC] {
        let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
        let reference = reference_exact(&engine, PolicyKind::Canonical, ExactConfig::default());
        let new = engine.eval().exact().keep_aux(true).worlds().unwrap();
        assert_eq!(reference, new, "worlds and deficits must match bit-for-bit");
        // The default builder output is exactly the projected table.
        let projected = engine.eval().exact().worlds().unwrap();
        assert_eq!(
            reference.map(|d| engine.program().project_output(d)),
            projected
        );
    }
}

#[test]
fn exact_parallel_builder_bit_identical_to_enumerate_parallel() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    let reference = enumerate_parallel(
        engine.program(),
        &engine.program().initial_instance,
        ExactConfig::default(),
    )
    .unwrap();
    let new = engine
        .eval()
        .exact_parallel()
        .keep_aux(true)
        .worlds()
        .unwrap();
    assert_eq!(reference, new);
}

#[test]
fn raw_enumeration_policy_and_aux_preserved() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    for kind in [
        PolicyKind::Canonical,
        PolicyKind::Reverse,
        PolicyKind::RoundRobin,
        PolicyKind::DeterministicFirst,
    ] {
        let reference = reference_exact(&engine, kind, ExactConfig::default());
        let new = engine
            .eval()
            .exact()
            .policy(kind)
            .keep_aux(true)
            .worlds()
            .unwrap();
        assert_eq!(reference, new, "policy {kind:?}");
    }
}

#[test]
fn exact_config_knobs_flow_through_builder() {
    let src = "G(0). G(Geometric<0.5 | X>) :- G(X).";
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let config = ExactConfig {
        max_depth: 6,
        support_tol: 1e-4,
        min_path_prob: 1e-6,
        ..ExactConfig::default()
    };
    let reference = reference_exact(&engine, PolicyKind::Canonical, config);
    let new = engine
        .eval()
        .exact()
        .keep_aux(true)
        .max_depth(6)
        .support_tol(1e-4)
        .min_path_prob(1e-6)
        .worlds()
        .unwrap();
    assert_eq!(reference, new);
    assert!(new.deficit().nontermination > 0.0);
}

#[test]
fn mc_builder_bit_identical_to_sample_pdb_single_and_multi_threaded() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    for threads in [1, 4] {
        let config = McConfig {
            runs: 3_000,
            seed: 99,
            threads,
            ..McConfig::default()
        };
        let reference = sample_pdb(
            engine.program(),
            &engine.program().initial_instance,
            &config,
        )
        .unwrap();
        let new = engine
            .eval()
            .sample(3_000)
            .seed(99)
            .threads(threads)
            .pdb()
            .unwrap();
        assert_eq!(reference.samples(), new.samples(), "threads = {threads}");
        assert_eq!(reference.errors(), new.errors());
        // And thread count itself never changes the result.
        let single = engine.eval().sample(3_000).seed(99).pdb().unwrap();
        assert_eq!(single.samples(), new.samples());
    }
}

#[test]
fn mc_variants_flow_through_builder() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    for variant in [
        ChaseVariant::Sequential(PolicyKind::Reverse),
        ChaseVariant::Parallel,
        ChaseVariant::Saturating,
    ] {
        let config = McConfig {
            runs: 500,
            seed: 5,
            variant,
            ..McConfig::default()
        };
        let reference = sample_pdb(
            engine.program(),
            &engine.program().initial_instance,
            &config,
        )
        .unwrap();
        let new = engine
            .eval()
            .sample(500)
            .seed(5)
            .variant(variant)
            .pdb()
            .unwrap();
        assert_eq!(reference.samples(), new.samples(), "variant {variant:?}");
    }
}

#[test]
fn extra_input_equivalence_through_eval_on() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    let city = engine.program().catalog.require("City").unwrap();
    let mut extra = Instance::new();
    extra.insert(city, tuple!["metropolis", 0.5]);
    let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
    let reference = enumerate_sequential(
        engine.program(),
        &engine.program().initial_instance.union(&extra),
        &mut policy,
        ExactConfig::default(),
    )
    .unwrap()
    .map(|d| engine.program().project_output(d));
    let new = engine.eval_on(Some(&extra)).worlds().unwrap();
    assert_eq!(reference, new);
    // A session with the same facts inserted answers identically.
    let mut session = Session::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    session.insert_facts(&extra);
    assert_eq!(reference, session.eval().worlds().unwrap());
}

#[test]
fn transform_equivalence_with_manual_mixture() {
    let engine = Engine::from_source(
        "rel City(symbol) input. Quake(C, Flip<0.4>) :- City(C).",
        SemanticsMode::Grohe,
    )
    .unwrap();
    let city = engine.program().catalog.require("City").unwrap();
    let mut with_city = Instance::new();
    with_city.insert(city, tuple!["gotham"]);
    let mut input = PossibleWorlds::new();
    input.add(with_city, 0.6);
    input.add(Instance::new(), 0.3);
    input.add_nontermination(0.1);
    // Theorems 4.8/5.5: the transformed SPDB is the probability-weighted
    // mixture of the per-world outputs; input deficit passes through.
    let parts: Vec<(f64, PossibleWorlds)> = input
        .iter()
        .map(|(world, p)| (p, engine.eval_on(Some(world)).worlds().unwrap()))
        .collect();
    let mut reference = PossibleWorlds::mixture(parts);
    reference.add_nontermination(input.deficit().nontermination);
    let new = engine.eval().transform(&input).unwrap();
    assert_eq!(reference, new);
    assert!(new.mass_is_consistent(1e-12));
}

#[test]
fn trace_equivalence_with_run_sequential() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    let existential: Vec<usize> = engine
        .program()
        .rules
        .iter()
        .filter(|r| r.is_existential())
        .map(|r| r.id)
        .collect();
    let mut policy = ChasePolicy::new(PolicyKind::RoundRobin, &existential);
    let mut rng = StdRng::seed_from_u64(17);
    let reference = run_sequential(
        engine.program(),
        &engine.program().initial_instance,
        &mut policy,
        &mut rng,
        500,
        true,
    )
    .unwrap();
    let new = engine
        .eval()
        .policy(PolicyKind::RoundRobin)
        .seed(17)
        .max_depth(500)
        .trace()
        .unwrap();
    assert_eq!(reference.steps, new.steps);
    assert_eq!(reference.instance, new.instance);
    assert_eq!(reference.log_weight.to_bits(), new.log_weight.to_bits());
}

#[test]
fn streaming_marginal_agrees_with_materialized_pdb() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    let alarm = engine.program().catalog.require("Alarm").unwrap();
    let fact = Fact::new(alarm, tuple!["h1"]);
    let pdb = engine.eval().sample(6_000).seed(3).pdb().unwrap();
    for threads in [1, 4] {
        let streamed = engine
            .eval()
            .sample(6_000)
            .seed(3)
            .threads(threads)
            .marginal(&fact)
            .unwrap();
        assert!(
            (streamed - pdb.marginal(&fact)).abs() < 1e-9,
            "threads {threads}"
        );
    }
}

#[test]
fn streaming_expectation_agrees_with_query_moments() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    let alarm = engine.program().catalog.require("Alarm").unwrap();
    let worlds = engine.eval().worlds().unwrap();
    let q = Query::Rel(alarm).aggregate(vec![], AggFun::Count, 0);
    let reference = query_moments(&worlds, &q, 0.0).unwrap();
    let m = engine
        .eval()
        .expectation(&Query::Rel(alarm), AggFun::Count)
        .unwrap()
        .unwrap();
    assert!((m.mean - reference.mean).abs() < 1e-12);
    assert!((m.variance - reference.variance).abs() < 1e-12);
    assert!((m.mass - reference.mass).abs() < 1e-12);
}

#[test]
fn streaming_histogram_agrees_across_backends() {
    let engine = Engine::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    let quake = engine.program().catalog.require("Earthquake").unwrap();
    let exact = engine.eval().histogram(quake, 1, 0.0, 2.0, 2).unwrap();
    assert!((exact.bins[0] - 0.9).abs() < 1e-12);
    assert!((exact.bins[1] - 0.1).abs() < 1e-12);
    let mc = engine
        .eval()
        .sample(8_000)
        .seed(11)
        .threads(4)
        .histogram(quake, 1, 0.0, 2.0, 2)
        .unwrap();
    assert!((mc.bins[1] - 0.1).abs() < 0.02);
    assert!((mc.total() - 1.0).abs() < 1e-9, "one quake fact per world");
}

/// A sink that counts observations but retains nothing — used to show the
/// Monte-Carlo path truly streams: no per-run instance survives the fold.
struct CountingSink {
    observed: usize,
    deficits: usize,
}

impl WorldSink for CountingSink {
    fn observe(&mut self, world: Instance, _weight: f64) {
        // The world is dropped right here; nothing is retained.
        drop(world);
        self.observed += 1;
    }

    fn observe_deficit(&mut self, _kind: gdatalog::pdb::DeficitKind, _weight: f64) {
        self.deficits += 1;
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[test]
fn streaming_mc_holds_o_result_memory() {
    // 100k runs through a statistic sink: the only state that survives the
    // evaluation is the sink itself — a few machine words — versus the
    // O(runs · |D|) of a materialized EmpiricalPdb. (The 1M-run version of
    // this check runs in release mode in the experiments bench and is
    // recorded in BENCH_PR2.json.)
    let engine =
        Engine::from_source("R(Flip<0.5>) :- true. S(X) :- R(X).", SemanticsMode::Grohe).unwrap();
    let mut counter = CountingSink {
        observed: 0,
        deficits: 0,
    };
    engine
        .eval()
        .sample(100_000)
        .seed(1)
        .collect_into(&mut counter)
        .unwrap();
    assert_eq!(counter.observed, 100_000);
    assert_eq!(counter.deficits, 0);
    // The streaming statistic state is O(result), independent of runs.
    assert!(std::mem::size_of::<MarginalSink>() < 128);
}

#[test]
fn one_session_serves_all_query_types_over_both_backends() {
    // Acceptance criterion: one compiled session, ≥3 query types
    // (marginal, expectation, histogram), exact and MC backends.
    let mut session = Session::from_source(BURGLARY, SemanticsMode::Grohe).unwrap();
    session
        .insert_facts_text("City(metropolis, 0.2). House(h3, metropolis).")
        .unwrap();
    let alarm = session.program().catalog.require("Alarm").unwrap();
    let fact = Fact::new(alarm, tuple!["h3"]);

    let exact_p = session.eval().exact().marginal(&fact).unwrap();
    let mc_p = session
        .eval()
        .sample(6_000)
        .seed(8)
        .threads(4)
        .marginal(&fact)
        .unwrap();
    // Quake path (0.1·0.6) or burglary path (0.2·0.9) trigger h3's alarm.
    let expect = 1.0 - (1.0 - 0.1 * 0.6) * (1.0 - 0.2 * 0.9);
    assert!((exact_p - expect).abs() < 1e-12);
    assert!((mc_p - exact_p).abs() < 0.03);

    let m_exact = session
        .eval()
        .exact()
        .expectation(&Query::Rel(alarm), AggFun::Count)
        .unwrap()
        .unwrap();
    let m_mc = session
        .eval()
        .sample(6_000)
        .seed(9)
        .threads(4)
        .expectation(&Query::Rel(alarm), AggFun::Count)
        .unwrap()
        .unwrap();
    assert!((m_exact.mean - m_mc.mean).abs() < 0.06);

    let burglary = session.program().catalog.require("Burglary").unwrap();
    let h_exact = session
        .eval()
        .exact()
        .histogram(burglary, 2, 0.0, 2.0, 2)
        .unwrap();
    let h_mc = session
        .eval()
        .sample(6_000)
        .seed(10)
        .threads(4)
        .histogram(burglary, 2, 0.0, 2.0, 2)
        .unwrap();
    // Bin 1 holds E[#burgled houses] = 2·0.3 + 1·0.2.
    assert!((h_exact.bins[1] - 0.8).abs() < 1e-12);
    assert!((h_exact.bins[1] - h_mc.bins[1]).abs() < 0.06);
}
