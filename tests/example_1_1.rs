//! Integration test: the full matrix of Example 1.1 — programs G0, Gε, G′0
//! under both semantics, with the paper's exact probabilities.

use gdatalog::prelude::*;

fn worlds(src: &str, mode: SemanticsMode) -> (Engine, PossibleWorlds) {
    let engine = Engine::from_source(src, mode).expect("valid program");
    let w = engine.eval().exact().worlds().expect("discrete");
    (engine, w)
}

/// Outcome probabilities (only-R(1), only-R(0), both) for a 1-ary R.
fn outcome_triple(engine: &Engine, w: &PossibleWorlds) -> (f64, f64, f64) {
    let r = engine.program().catalog.require("R").unwrap();
    let one = Tuple::from(vec![Value::int(1)]);
    let zero = Tuple::from(vec![Value::int(0)]);
    (
        w.probability(|d| d.contains(r, &one) && !d.contains(r, &zero)),
        w.probability(|d| d.contains(r, &zero) && !d.contains(r, &one)),
        w.probability(|d| d.contains(r, &zero) && d.contains(r, &one)),
    )
}

const G0: &str = "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.";

#[test]
fn g0_new_semantics_quarters() {
    let (e, w) = worlds(G0, SemanticsMode::Grohe);
    let (p1, p0, pb) = outcome_triple(&e, &w);
    assert!((p1 - 0.25).abs() < 1e-12);
    assert!((p0 - 0.25).abs() < 1e-12);
    assert!((pb - 0.5).abs() < 1e-12);
    assert!(w.mass_is_consistent(1e-12));
}

#[test]
fn g0_old_semantics_halves() {
    let (e, w) = worlds(G0, SemanticsMode::Barany);
    let (p1, p0, pb) = outcome_triple(&e, &w);
    assert!((p1 - 0.5).abs() < 1e-12);
    assert!((p0 - 0.5).abs() < 1e-12);
    assert_eq!(pb, 0.0);
}

/// Gε as displayed in the paper: one rule Flip⟨1/2⟩, one Flip⟨1/2+ε⟩.
/// Both semantics treat the two parameters as distinct experiments, so the
/// outcome is (1/2)(1/2+ε) / (1/2)(1/2−ε) / 1/2.
#[test]
fn g_eps_as_displayed() {
    for eps in [0.25, 0.1, 0.01] {
        let src = format!("R(Flip<0.5>) :- true. R(Flip<{}>) :- true.", 0.5 + eps);
        for mode in [SemanticsMode::Grohe, SemanticsMode::Barany] {
            let (e, w) = worlds(&src, mode);
            let (p1, p0, pb) = outcome_triple(&e, &w);
            assert!((p1 - 0.5 * (0.5 + eps)).abs() < 1e-12, "{mode}: {p1}");
            assert!((p0 - 0.5 * (0.5 - eps)).abs() < 1e-12, "{mode}: {p0}");
            assert!((pb - 0.5).abs() < 1e-12, "{mode}: {pb}");
        }
    }
}

/// The arithmetic the paper actually reports for Gε — `1/4+ε+ε²` etc. —
/// corresponds to *both* rules using Flip⟨1/2+ε⟩ (see the errata note in
/// DESIGN.md). Under the new semantics that variant reproduces the paper's
/// numbers exactly.
#[test]
fn g_eps_paper_arithmetic_variant() {
    for eps in [0.25, 0.1, 0.01] {
        let p = 0.5 + eps;
        let src = format!("R(Flip<{p}>) :- true. R(Flip<{p}>) :- true.");
        let (e, w) = worlds(&src, SemanticsMode::Grohe);
        let (p1, p0, pb) = outcome_triple(&e, &w);
        assert!((p1 - (0.25 + eps + eps * eps)).abs() < 1e-12, "{p1}");
        assert!((p0 - (0.25 - eps + eps * eps)).abs() < 1e-12, "{p0}");
        assert!((pb - (0.5 - 2.0 * eps * eps)).abs() < 1e-12, "{pb}");
    }
}

/// ε → 0 convergence: the new semantics is continuous in the parameters
/// (the failure of this for the old semantics motivated the redesign).
#[test]
fn g_eps_converges_to_g0_under_new_semantics() {
    let (e0, w0) = worlds(G0, SemanticsMode::Grohe);
    let base = outcome_triple(&e0, &w0);
    let mut last_gap = f64::INFINITY;
    for eps in [0.2, 0.1, 0.05, 0.01, 0.001] {
        let src = format!("R(Flip<0.5>) :- true. R(Flip<{}>) :- true.", 0.5 + eps);
        let (e, w) = worlds(&src, SemanticsMode::Grohe);
        let t = outcome_triple(&e, &w);
        let gap = (t.0 - base.0).abs() + (t.1 - base.1).abs() + (t.2 - base.2).abs();
        assert!(
            gap < last_gap,
            "gap must shrink with ε: {gap} vs {last_gap}"
        );
        last_gap = gap;
    }
    assert!(last_gap < 0.005);
}

/// Under the *old* semantics, G0 and Gε do not converge to each other:
/// at ε = 0 the two rules suddenly share one experiment (the
/// discontinuity of Example 1.1).
#[test]
fn old_semantics_is_discontinuous_at_eps_zero() {
    let (e, w) = worlds(G0, SemanticsMode::Barany);
    let at_zero = outcome_triple(&e, &w);
    let src = "R(Flip<0.5>) :- true. R(Flip<0.501>) :- true.";
    let (e2, w2) = worlds(src, SemanticsMode::Barany);
    let near_zero = outcome_triple(&e2, &w2);
    // Near zero the "both" outcome has probability ~1/2; at zero it is 0.
    assert!((near_zero.2 - 0.5).abs() < 0.01);
    assert_eq!(at_zero.2, 0.0);
}

/// G′0: Flip vs an identically-distributed, differently-named distribution.
#[test]
fn g0_prime_rename_sensitivity() {
    let src = "R(Flip<0.5>) :- true. R(Bernoulli<0.5>) :- true.";
    // New semantics: identical to G0.
    let (e_new, w_new) = worlds(src, SemanticsMode::Grohe);
    let (e0, w0) = worlds(G0, SemanticsMode::Grohe);
    assert_eq!(outcome_triple(&e_new, &w_new), outcome_triple(&e0, &w0));
    // Old semantics: the rename decorrelates — 4 outcomes like the new G0.
    let (e_old, w_old) = worlds(src, SemanticsMode::Barany);
    let t = outcome_triple(&e_old, &w_old);
    assert!((t.0 - 0.25).abs() < 1e-12);
    assert!((t.2 - 0.5).abs() < 1e-12);
}
