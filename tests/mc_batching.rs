//! Acceptance suite for batched Monte-Carlo execution (PR 9): the lane-group
//! executor (`--batch`) is a pure throughput knob. For every batch size,
//! worker count, and conditioning mode the observed world stream is
//! **bit-identical** to the scalar path (`batch(1)`, one worker) under the
//! same seed, ESS-targeted adaptive sampling included; and a deadline can
//! only fire between lane batches, never corrupt one mid-flight.

use std::any::Any;
use std::time::{Duration, Instant};

use gdatalog::pdb::DeficitKind;
use gdatalog::prelude::*;

/// A discrete/continuous mix with a branchy chase: lane groups split on
/// `Quake`, split again on `Alarm`, and diverge on the `Mag` draw.
const MIXED: &str = r#"
    Quake(Flip<0.2>) :- true.
    Mag(Normal<5.0, 1.0>) :- Quake(1).
    Alarm(Flip<0.7>) :- Quake(1).
    Alarm(Flip<0.1>) :- Quake(0).
"#;

/// One recorded sink call, weights compared bit-for-bit (`f64` equality is
/// deliberate: the batched path must replay the exact scalar stream).
#[derive(Debug, Clone, PartialEq)]
enum Obs {
    World(Instance, f64),
    LogWorld(Instance, f64),
    Deficit(DeficitKind, f64),
}

/// Records every observation in stream order; forks per worker and joins
/// in chunk order, so the recorded sequence is the run-order stream
/// regardless of the worker count.
#[derive(Default)]
struct RecordingSink {
    obs: Vec<Obs>,
}

impl RecordingSink {
    fn forked(&self) -> RecordingSink {
        RecordingSink::default()
    }

    fn absorb(&mut self, other: RecordingSink) {
        self.obs.extend(other.obs);
    }
}

impl WorldSink for RecordingSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.obs.push(Obs::World(world, weight));
    }

    fn observe_ref(&mut self, world: &Instance, weight: f64) {
        self.obs.push(Obs::World(world.clone(), weight));
    }

    fn observe_log(&mut self, world: Instance, log_weight: f64) {
        self.obs.push(Obs::LogWorld(world, log_weight));
    }

    fn observe_log_ref(&mut self, world: &Instance, log_weight: f64) {
        self.obs.push(Obs::LogWorld(world.clone(), log_weight));
    }

    fn observe_deficit(&mut self, kind: DeficitKind, weight: f64) {
        self.obs.push(Obs::Deficit(kind, weight));
    }

    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        Some(Box::new(self.forked()))
    }

    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let other = forked
            .into_any()
            .downcast::<RecordingSink>()
            .expect("join requires a RecordingSink");
        self.absorb(*other);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Streams `runs` Monte-Carlo runs of `MIXED` into a recording sink.
fn stream(
    session: &Session,
    seed: u64,
    runs: usize,
    batch: usize,
    threads: usize,
    given: Option<&str>,
) -> Vec<Obs> {
    let mut eval = session
        .eval()
        .sample(runs)
        .seed(seed)
        .batch(batch)
        .threads(threads);
    if let Some(evidence) = given {
        eval = eval.given(evidence);
    }
    let mut sink = RecordingSink::default();
    eval.collect_into(&mut sink).unwrap();
    sink.obs
}

/// The tentpole gate: for seeds × batch {1, 7, 64} × workers {1, 2, 4} ×
/// {unconditioned, conditioned}, the observed stream equals the scalar
/// single-worker reference **exactly** — same worlds, same weights, same
/// order.
#[test]
fn batched_stream_is_bit_identical_to_scalar_across_matrix() {
    let session = Session::from_source(MIXED, SemanticsMode::Grohe).unwrap();
    const RUNS: usize = 400;
    for seed in [0u64, 9, 1234] {
        for given in [None, Some("Alarm(1).")] {
            let reference = stream(&session, seed, RUNS, 1, 1, given);
            assert!(!reference.is_empty());
            for batch in [1usize, 7, 64] {
                for threads in [1usize, 2, 4] {
                    let got = stream(&session, seed, RUNS, batch, threads, given);
                    assert_eq!(
                        got, reference,
                        "seed {seed} given {given:?}: batch {batch} × {threads} workers \
                         diverged from the scalar stream"
                    );
                }
            }
        }
    }
}

/// Conditioned streams drop rejected runs, so the recorded stream is a
/// strict subset of the run range — and still identical across the matrix
/// (previous test). Sanity-check the reference shapes here.
#[test]
fn conditioned_reference_stream_drops_rejected_runs() {
    let session = Session::from_source(MIXED, SemanticsMode::Grohe).unwrap();
    let unconditioned = stream(&session, 9, 400, 1, 1, None);
    let conditioned = stream(&session, 9, 400, 1, 1, Some("Alarm(1)."));
    assert_eq!(unconditioned.len(), 400);
    assert!(!conditioned.is_empty());
    assert!(
        conditioned.len() < 400,
        "hard evidence must reject some runs"
    );
    for obs in &conditioned {
        assert!(matches!(obs, Obs::LogWorld(_, lw) if lw.is_finite()));
    }
}

/// ESS-targeted adaptive sampling grows in whole lane batches; with a
/// first batch that every lane size divides, the schedule — and therefore
/// every answer and the evidence summary — is identical across batch
/// sizes at a fixed worker count.
#[test]
fn adaptive_ess_answers_are_invariant_to_batch_size() {
    let session = Session::from_source(MIXED, SemanticsMode::Grohe).unwrap();
    let quake = session.program().catalog.require("Quake").unwrap();
    let queries = QuerySet::new().marginal(&Fact::new(quake, tuple![1i64]));
    // 448 = 64 · 7: a whole number of lane batches at every tested size,
    // so the doubling schedule polls at identical run counts.
    let target = EssTarget::new(150.0).initial_batch(448).max_runs(3584);
    let answer = |batch: usize| {
        session
            .eval()
            .sample_until(target)
            .seed(11)
            .batch(batch)
            .given("Alarm(1).")
            .answer(&queries)
            .unwrap()
    };
    let reference = answer(1);
    let ev = reference.evidence();
    assert!(ev.ess >= 150.0 || ev.runs == 3584);
    assert_eq!(ev.runs % 448, 0, "adaptive growth must be whole batches");
    for batch in [7usize, 64, 448] {
        let got = answer(batch);
        assert_eq!(
            got.iter().collect::<Vec<_>>(),
            reference.iter().collect::<Vec<_>>(),
            "batch {batch}"
        );
        assert_eq!(got.evidence().runs, ev.runs, "batch {batch}");
        assert_eq!(got.evidence().worlds, ev.worlds, "batch {batch}");
        assert!((got.evidence().ess - ev.ess).abs() == 0.0, "batch {batch}");
    }
}

/// The `RunBudget` invariants hold however the caller abuses the knobs:
/// nonzero batches and a cap that admits the first batch.
#[test]
fn run_budget_validation_is_shared_by_both_paths() {
    let fixed = RunBudget::fixed(0, 0);
    assert_eq!(
        (fixed.max_runs, fixed.initial_batch, fixed.batch),
        (1, 1, 1)
    );
    let adaptive = RunBudget::adaptive(10, 64, 0);
    assert_eq!(
        adaptive.max_runs, 64,
        "cap must admit one whole first batch"
    );
    assert_eq!(adaptive.batch, 1);
    assert_eq!(adaptive.round_to_batches(3), 3);
    let lanes = RunBudget::adaptive(1000, 448, 64);
    assert_eq!(lanes.round_to_batches(449), 512);
    assert_eq!(lanes.round_to_batches(999), 1000, "clamped at the cap");
    assert_eq!(
        EssTarget::new(10.0)
            .initial_batch(448)
            .budget(64)
            .initial_batch,
        448
    );
}

/// S3: a slow conditioned program under a deadline fails with
/// `DeadlineExceeded` at every worker count, and every world the sink saw
/// before the cut is a fully-chased, evidence-consistent world — the
/// deadline fires **between** lane batches, never mid-batch.
#[test]
fn deadline_cuts_between_batches_without_corruption() {
    // ~160 independent draws per run make a single run slow enough that a
    // small deadline lands mid-pass, whatever the host speed.
    let mut src = String::from(MIXED);
    for i in 0..160 {
        src.push_str(&format!("Pad{i}(Normal<0.0, 1.0>) :- true.\n"));
    }
    let session = Session::from_source(&src, SemanticsMode::Grohe).unwrap();
    let alarm = session.program().catalog.require("Alarm").unwrap();
    for threads in [1usize, 2, 4] {
        let mut sink = RecordingSink::default();
        let err = session
            .eval()
            .sample(2_000_000)
            .seed(5)
            .batch(64)
            .threads(threads)
            .given("Alarm(1).")
            .deadline(Instant::now() + Duration::from_millis(30))
            .collect_into(&mut sink)
            .unwrap_err();
        assert!(
            matches!(err, EngineError::DeadlineExceeded),
            "{threads} workers: expected DeadlineExceeded, got {err:?}"
        );
        assert!(
            sink.obs.len() < 2_000_000,
            "{threads} workers: the deadline should interrupt the pass"
        );
        for obs in &sink.obs {
            match obs {
                Obs::LogWorld(world, lw) => {
                    assert!(lw.is_finite());
                    assert!(
                        world.relation(alarm).contains(&tuple![1i64]),
                        "{threads} workers: emitted world violates the evidence"
                    );
                }
                other => panic!("{threads} workers: unexpected observation {other:?}"),
            }
        }
    }
}

/// An expired deadline fails fast at the first batch boundary with
/// nothing observed — the batched path starts with the deadline check.
#[test]
fn expired_deadline_observes_nothing() {
    let session = Session::from_source(MIXED, SemanticsMode::Grohe).unwrap();
    let mut sink = RecordingSink::default();
    let err = session
        .eval()
        .sample(10_000)
        .batch(64)
        .deadline(Instant::now())
        .collect_into(&mut sink)
        .unwrap_err();
    assert!(matches!(err, EngineError::DeadlineExceeded));
    assert!(sink.obs.is_empty());
}
