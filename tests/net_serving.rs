//! Acceptance tests for the HTTP serving subsystem (ISSUE 7): the
//! scheduler's multi-worker throughput floor, and the wire path end to
//! end through `gdatalog::net` — server, load generator, and metrics
//! telling one consistent story.

use std::time::{Duration, Instant};

use gdatalog::net::{self, HttpServer, LoadgenConfig, NetConfig};
use gdatalog::prelude::*;

const MODEL: &str = "rel City(symbol, real) input.
    Earthquake(C, Flip<R>) :- City(C, R).
    Trig(C, Flip<0.6>) :- Earthquake(C, 1).
    Alarm(C) :- Trig(C, 1).";

/// A serving corpus with non-uniform per-request cost (varying run
/// counts), the shape that used to starve contiguous-chunk scheduling.
fn corpus(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            Request::marginal(format!("Alarm(c{i})"))
                .input(format!("City(c{i}, 0.4)."))
                .mc(500 + 250 * (i % 5))
                .seed(i as u64)
        })
        .collect()
}

/// The work-stealing scheduler must never make more workers slower:
/// 4-worker batch throughput stays within 0.9× of 1-worker even on a
/// single-core machine (where parallelism cannot win, only lose to
/// overhead — the old contiguous-chunk splitter lost far more than 10%
/// on skewed corpora).
#[test]
fn four_worker_batch_is_not_slower_than_single_worker() {
    let requests = corpus(24);
    let single = Server::from_source(MODEL, SemanticsMode::Grohe)
        .unwrap()
        .threads(1);
    let multi = Server::from_source(MODEL, SemanticsMode::Grohe)
        .unwrap()
        .threads(4);
    // Warm both pools so session creation is off the clock.
    for server in [&single, &multi] {
        assert!(server.batch(&requests).iter().all(Result::is_ok));
    }
    let best_of_3 = |server: &Server| {
        (0..3)
            .map(|_| {
                let started = Instant::now();
                assert!(server.batch(&requests).iter().all(Result::is_ok));
                started.elapsed()
            })
            .min()
            .unwrap()
    };
    let t1 = best_of_3(&single);
    let t4 = best_of_3(&multi);
    let ratio = t1.as_secs_f64() / t4.as_secs_f64();
    assert!(
        ratio >= 0.9,
        "4-worker throughput regressed below the 0.9× floor: \
         1 worker {t1:?}, 4 workers {t4:?} (ratio {ratio:.3})"
    );
}

/// One marginal asked over HTTP equals the same marginal asked directly
/// on a session — the wire adds transport, never drift.
#[test]
fn wire_answers_match_direct_evaluation_bit_for_bit() {
    let mut session = Session::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    session.insert_facts_text("City(gotham, 0.3).").unwrap();
    let alarm = session.program().catalog.require("Alarm").unwrap();
    let reference = session
        .eval()
        .exact()
        .marginal(&Fact::new(alarm, tuple!["gotham"]))
        .unwrap();

    let server = HttpServer::start_source(
        MODEL,
        SemanticsMode::Grohe,
        "127.0.0.1:0",
        NetConfig {
            workers: 1,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let mut conn = net::Conn::new(std::net::TcpStream::connect(server.addr()).unwrap());
    conn.write_request(
        "POST",
        "/v1/query",
        r#"{"kind":"marginal","fact":"Alarm(gotham)","input":"City(gotham, 0.3).","backend":"exact"}"#,
    )
    .unwrap();
    let resp = conn.read_response().unwrap();
    assert_eq!(resp.status, 200);
    let reply = gdatalog::serve::json::Json::parse(&resp.body).unwrap();
    let p = reply
        .get("p")
        .and_then(gdatalog::serve::json::Json::as_f64)
        .unwrap();
    assert_eq!(p.to_bits(), reference.to_bits(), "wire vs direct");
    server.shutdown();
    server.join();
}

/// A loadgen burst against a live server: every request comes back 2xx,
/// and the server's own metrics agree with the client's count.
#[test]
fn loadgen_burst_is_all_2xx_and_metrics_agree() {
    let server = HttpServer::start_source(
        MODEL,
        SemanticsMode::Grohe,
        "127.0.0.1:0",
        NetConfig {
            workers: 2,
            ..NetConfig::default()
        },
    )
    .unwrap();
    let bodies = net::bodies_from_json(
        r#"[
            {"kind":"marginal","fact":"Alarm(a)","input":"City(a, 0.3).","backend":"exact"},
            {"kind":"marginal","fact":"Alarm(b)","input":"City(b, 0.7).","backend":"mc","runs":400,"seed":7}
        ]"#,
    )
    .unwrap();
    let report = net::run_loadgen(
        &bodies,
        &LoadgenConfig {
            addr: server.addr().to_string(),
            connections: 2,
            duration: Duration::from_millis(400),
            ..LoadgenConfig::default()
        },
    );
    assert!(report.sent > 0, "burst drove traffic: {report:?}");
    assert_eq!(report.io_errors, 0, "no transport failures: {report:?}");
    assert_eq!(report.non_2xx, 0, "all 2xx: {report:?}");
    assert!(report.p99_us >= report.p50_us);

    let metrics = server.metrics();
    assert_eq!(
        metrics.requests, report.ok_2xx,
        "server counted what the client sent"
    );
    assert_eq!(metrics.errors, 0);
    server.shutdown();
    server.join();
}
