//! Integration tests for §6.2: each semantics simulates the other via the
//! program rewritings, exactly.

use std::sync::Arc;

use gdatalog::lang::{
    parse_program, simulate_barany_in_grohe, simulate_grohe_in_barany, BSIM_PREFIX,
};
use gdatalog::prelude::*;

/// Enumerates `src` under `mode` and projects to the named relations.
#[allow(dead_code)] // shared helper; not every test file exercises it
fn worlds_over(src: &str, mode: SemanticsMode, rels: &[&str]) -> PossibleWorlds {
    let engine = Engine::from_source(src, mode).unwrap();
    let catalog = engine.program().catalog.clone();
    let keep: Vec<RelId> = rels.iter().map(|r| catalog.require(r).unwrap()).collect();
    engine
        .eval()
        .exact()
        .worlds()
        .unwrap()
        .project_relations(|rel| keep.contains(&rel))
}

/// Enumerates a rewritten AST under `mode`, projecting to `rels` *by name*
/// (the rewritten program has its own catalog with different RelIds).
fn worlds_of_ast(
    ast: gdatalog::lang::Program,
    mode: SemanticsMode,
    rels: &[&str],
) -> PossibleWorlds {
    let engine = Engine::from_ast(ast, mode, Arc::new(Registry::standard())).unwrap();
    let catalog = engine.program().catalog.clone();
    let keep: Vec<RelId> = rels.iter().map(|r| catalog.require(r).unwrap()).collect();
    engine
        .eval()
        .exact()
        .worlds()
        .unwrap()
        .project_relations(|rel| keep.contains(&rel))
}

/// Canonical-text world table over a catalog-independent rendering, so
/// tables from *different* engines (different RelIds) can be compared.
fn named_table(engine_src: &str, mode: SemanticsMode, rels: &[&str]) -> Vec<(String, f64)> {
    let engine = Engine::from_source(engine_src, mode).unwrap();
    let catalog = engine.program().catalog.clone();
    let keep: Vec<RelId> = rels.iter().map(|r| catalog.require(r).unwrap()).collect();
    engine
        .eval()
        .exact()
        .worlds()
        .unwrap()
        .project_relations(|rel| keep.contains(&rel))
        .table(&catalog)
}

fn named_table_of_ast(
    ast: gdatalog::lang::Program,
    mode: SemanticsMode,
    rels: &[&str],
) -> Vec<(String, f64)> {
    let engine = Engine::from_ast(ast, mode, Arc::new(Registry::standard())).unwrap();
    let catalog = engine.program().catalog.clone();
    let keep: Vec<RelId> = rels.iter().map(|r| catalog.require(r).unwrap()).collect();
    engine
        .eval()
        .exact()
        .worlds()
        .unwrap()
        .project_relations(|rel| keep.contains(&rel))
        .table(&catalog)
}

fn tables_close(a: &[(String, f64)], b: &[(String, f64)]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|((ta, pa), (tb, pb))| ta == tb && (pa - pb).abs() < 1e-12)
}

/// H under Bárány == H′ (rewritten) under Grohe, restricted to {R, S}.
#[test]
fn h_prime_simulates_barany() {
    let h = "R(Flip<0.5>) :- true. S(Flip<0.5>) :- true.";
    let old = named_table(h, SemanticsMode::Barany, &["R", "S"]);
    let h_prime = simulate_barany_in_grohe(&parse_program(h).unwrap());
    // Helper relations must not leak into the comparison.
    for rule in &h_prime.rules {
        let _ = rule; // structure checked in unit tests
    }
    let sim = named_table_of_ast(h_prime, SemanticsMode::Grohe, &["R", "S"]);
    assert!(tables_close(&old, &sim), "{old:?} vs {sim:?}");
}

/// The same simulation on a program with data-dependent parameters and
/// tags — the general case of §6.2.
#[test]
fn barany_simulation_general_case() {
    let src = r#"
        rel City(symbol, real) input.
        City(a, 0.5). City(b, 0.25).
        Quake(C, Flip<R>) :- City(C, R).
        Echo(C, Flip<R>) :- City(C, R).
    "#;
    let old = named_table(src, SemanticsMode::Barany, &["Quake", "Echo"]);
    let rewritten = simulate_barany_in_grohe(&parse_program(src).unwrap());
    let sim = named_table_of_ast(rewritten, SemanticsMode::Grohe, &["Quake", "Echo"]);
    assert!(tables_close(&old, &sim), "\nold: {old:?}\nsim: {sim:?}");
}

/// The dual direction: tagging random terms with rule identity makes the
/// Bárány semantics reproduce the Grohe semantics.
#[test]
fn grohe_simulation_via_tags() {
    for src in [
        "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
        "R(Flip<0.5>) :- true. S(Flip<0.5>) :- true.",
        r#"
            rel City(symbol, real) input.
            City(a, 0.5). City(b, 0.25).
            Quake(C, Flip<R>) :- City(C, R).
            Echo(C, Flip<R>) :- City(C, R).
        "#,
    ] {
        let engine_new = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
        let cat_new = engine_new.program().catalog.clone();
        let new_table = engine_new.eval().exact().worlds().unwrap().table(&cat_new);

        let tagged = simulate_grohe_in_barany(&parse_program(src).unwrap());
        let engine_sim = Engine::from_ast(
            tagged,
            SemanticsMode::Barany,
            Arc::new(Registry::standard()),
        )
        .unwrap();
        let cat_sim = engine_sim.program().catalog.clone();
        let sim_table = engine_sim.eval().exact().worlds().unwrap().table(&cat_sim);
        assert!(
            tables_close(&new_table, &sim_table),
            "program {src}:\nnew: {new_table:?}\nsim: {sim_table:?}"
        );
    }
}

/// Sanity check on the helper-prefix hygiene of the rewriting.
#[test]
fn rewriting_helpers_are_identifiable() {
    let h = "R(Flip<0.5>) :- true.";
    let rewritten = simulate_barany_in_grohe(&parse_program(h).unwrap());
    let helper_rules = rewritten
        .rules
        .iter()
        .filter(|r| r.head.rel.starts_with(BSIM_PREFIX))
        .count();
    assert!(helper_rules >= 2, "need + res rules present");
    // And the projection in `worlds_over` removes them.
    let w = worlds_of_ast(rewritten, SemanticsMode::Grohe, &["R"]);
    assert!((w.mass() - 1.0).abs() < 1e-12);
}
