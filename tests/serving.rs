//! Acceptance tests for the serving layer (ISSUE 3): batch-of-one
//! bit-identity against the plain Session/Evaluation surface (exact and
//! seeded Monte-Carlo), residual-free session reset, and pointer-identical
//! plan reuse on cache hits.

use std::sync::Arc;

use gdatalog::prelude::*;

const MODEL: &str = "rel City(symbol, real) input.
    Earthquake(C, Flip<R>) :- City(C, R).
    Trig(C, Flip<0.6>) :- Earthquake(C, 1).
    Alarm(C) :- Trig(C, 1).";

/// Evaluates the same marginal directly on a fresh `Session`, bypassing
/// the serving layer entirely — the reference the batch must match bit
/// for bit.
fn direct_marginal(evidence: &str, fact_text: &str, mc: Option<(usize, u64)>) -> f64 {
    let mut session = Session::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    session.insert_facts_text(evidence).unwrap();
    let parsed =
        gdatalog::lang::parse_facts(&format!("{fact_text}."), &session.program().catalog).unwrap();
    let fact = parsed.facts().next().unwrap();
    match mc {
        None => session.eval().exact().marginal(&fact).unwrap(),
        Some((runs, seed)) => session
            .eval()
            .sample(runs)
            .seed(seed)
            .marginal(&fact)
            .unwrap(),
    }
}

#[test]
fn batch_of_one_is_bit_identical_exact() {
    let server = Server::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    let request = Request::marginal("Alarm(gotham)")
        .evidence("City(gotham, 0.3).")
        .exact();
    let reference = direct_marginal("City(gotham, 0.3).", "Alarm(gotham)", None);
    // Once through batch(), once through the single-request entry point.
    let batched = server.batch(std::slice::from_ref(&request));
    let Response::Marginal(p) = batched[0].as_ref().unwrap().single() else {
        panic!("marginal response expected");
    };
    assert_eq!(p.to_bits(), reference.to_bits(), "batch-of-one, exact");
    let Response::Marginal(p) = server.execute(&request).unwrap().single().clone() else {
        panic!("marginal response expected");
    };
    assert_eq!(p.to_bits(), reference.to_bits(), "single execute, exact");
}

#[test]
fn batch_of_one_is_bit_identical_seeded_mc() {
    let server = Server::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    for seed in [0u64, 7, 0xC0FFEE] {
        let request = Request::marginal("Alarm(gotham)")
            .evidence("City(gotham, 0.3).")
            .mc(3_000)
            .seed(seed);
        let reference = direct_marginal("City(gotham, 0.3).", "Alarm(gotham)", Some((3_000, seed)));
        let batched = server.batch(std::slice::from_ref(&request));
        let Response::Marginal(p) = batched[0].as_ref().unwrap().single() else {
            panic!("marginal response expected");
        };
        assert_eq!(p.to_bits(), reference.to_bits(), "seed {seed}");
    }
}

#[test]
fn batch_is_bit_identical_to_sequential_singles_any_worker_count() {
    let requests: Vec<Request> = (0..12)
        .map(|i| {
            let req = Request::marginal(format!("Alarm(c{i})"))
                .evidence(format!("City(c{i}, 0.{}).", 1 + i % 8));
            if i % 3 == 2 {
                req.mc(1_000).seed(i as u64)
            } else {
                req.exact()
            }
        })
        .collect();
    let reference: Vec<Reply> = {
        let server = Server::from_source(MODEL, SemanticsMode::Grohe).unwrap();
        requests
            .iter()
            .map(|r| server.execute(r).unwrap())
            .collect()
    };
    for workers in [1usize, 2, 5] {
        let server = Server::from_source(MODEL, SemanticsMode::Grohe)
            .unwrap()
            .threads(workers);
        let answers = server.batch(&requests);
        for (i, answer) in answers.into_iter().enumerate() {
            assert_eq!(answer.unwrap(), reference[i], "workers {workers}, slot {i}");
        }
    }
}

#[test]
fn session_reset_leaves_no_residual_facts() {
    let mut session = Session::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    let base = session.facts().len();
    session
        .insert_facts_text("City(gotham, 0.3). City(metropolis, 0.6).")
        .unwrap();
    assert_eq!(session.facts().len(), base + 2);
    session.reset();
    assert_eq!(session.facts().len(), base, "reset restores the base EDB");
    assert_eq!(session.inserted_facts(), 0);
    // And the reset session answers like a fresh one.
    let alarm = session.program().catalog.require("Alarm").unwrap();
    assert!(session.eval().exact().marginals(alarm).unwrap().is_empty());

    // Through the pool: a returned session is clean on next checkout.
    let server = Server::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    let _ = server.batch(&[Request::marginals("Alarm")
        .evidence("City(gotham, 1.0).")
        .exact()]);
    let session = server.pool().checkout();
    assert_eq!(
        session.facts().len(),
        base,
        "pooled session carries no residue"
    );
}

#[test]
fn cache_hit_returns_identical_plan_pointer() {
    let cache = ProgramCache::new();
    let a = cache.get_or_compile(MODEL, SemanticsMode::Grohe).unwrap();
    let b = cache.get_or_compile(MODEL, SemanticsMode::Grohe).unwrap();
    assert!(Arc::ptr_eq(&a, &b), "hit returns the same model");
    assert!(
        Arc::ptr_eq(a.plans(), b.plans()),
        "hit returns the identical PreparedProgram allocation"
    );
    assert!(
        Arc::ptr_eq(a.engine().program_shared(), b.engine().program_shared()),
        "hit returns the identical CompiledProgram allocation"
    );
    // Sessions spawned from the model keep sharing those allocations.
    let session = a.session();
    assert!(Arc::ptr_eq(session.engine().prepared(), b.plans()));
    assert_eq!(
        cache.stats(),
        gdatalog::serve::CacheStats {
            hits: 1,
            misses: 1,
            entries: 1
        }
    );
}
