//! Property-based integration tests: randomly generated *weakly acyclic
//! discrete* GDatalog programs satisfy the paper's guarantees —
//! full-mass termination (Thm. 6.3), chase-order independence (Thm. 6.1),
//! and the FD invariant (Lemma 3.10).
//!
//! Program shape: a layered pipeline `L0 → L1 → … → Lk` where each layer
//! either copies, flips a coin parameterized by a constant, or joins two
//! earlier layers. Layering guarantees weak acyclicity by construction.

use proptest::prelude::*;

use gdatalog::prelude::*;

#[derive(Debug, Clone)]
enum LayerKind {
    Copy,
    Coin(u8),     // bias in percent, 1..=99
    JoinPrevious, // join with layer k-2 (if any)
}

fn arb_layer() -> impl Strategy<Value = LayerKind> {
    prop_oneof![
        2 => Just(LayerKind::Copy),
        3 => (1u8..=99).prop_map(LayerKind::Coin),
        1 => Just(LayerKind::JoinPrevious),
    ]
}

/// Renders the layered program. `L0` is seeded with `seeds` facts.
fn render(layers: &[LayerKind], seeds: u8) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for s in 0..seeds.max(1) {
        let _ = writeln!(out, "L0({s}).");
    }
    for (i, layer) in layers.iter().enumerate() {
        let prev = i; // layer i reads L{i}, writes L{i+1}
        let cur = i + 1;
        match layer {
            LayerKind::Copy => {
                let _ = writeln!(out, "L{cur}(X) :- L{prev}(X).");
            }
            LayerKind::Coin(pct) => {
                let p = f64::from(*pct) / 100.0;
                let _ = writeln!(out, "L{cur}(Flip<{p} | X>) :- L{prev}(X).");
            }
            LayerKind::JoinPrevious => {
                if prev >= 1 {
                    let _ = writeln!(out, "L{cur}(X) :- L{prev}(X), L{}(X).", prev - 1);
                } else {
                    let _ = writeln!(out, "L{cur}(X) :- L{prev}(X).");
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_layered_programs_obey_the_paper(
        layers in proptest::collection::vec(arb_layer(), 1..4),
        seeds in 1u8..3,
    ) {
        let src = render(&layers, seeds);
        let engine = Engine::from_source(&src, SemanticsMode::Grohe)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{src}")))?;

        // Layered ⇒ weakly acyclic.
        prop_assert!(engine.program().weakly_acyclic(), "program:\n{src}");

        // Thm. 6.3: exact enumeration completes with full mass.
        let reference = engine
            .eval().exact().worlds()
            .map_err(|e| TestCaseError::fail(format!("{e}\n{src}")))?;
        prop_assert!(
            (reference.mass() - 1.0).abs() < 1e-9,
            "mass {} for\n{src}",
            reference.mass()
        );

        // Thm. 6.1: policy independence + parallel agreement.
        for kind in [PolicyKind::Reverse, PolicyKind::Random { seed: 3 }] {
            let w = engine
                .eval().exact().policy(kind).keep_aux(true).worlds()
                .unwrap()
                .map(|d| engine.program().project_output(d));
            prop_assert!(reference.total_variation(&w) < 1e-9, "{kind:?} on\n{src}");
        }
        let par = engine.eval().exact_parallel().worlds().unwrap();
        prop_assert!(reference.total_variation(&par) < 1e-9, "parallel on\n{src}");

        // Lemma 3.10 in every world of the raw table.
        let raw = engine
            .eval().exact().policy(PolicyKind::Canonical).keep_aux(true).worlds()
            .unwrap();
        for (world, _) in raw.iter() {
            for fd in &engine.program().fds {
                prop_assert!(fd.check(world).is_ok(), "FD violated in\n{src}");
            }
        }
    }

    /// Both semantics agree on programs where every random rule has a
    /// unique (distribution, parameter, tag) signature — the sample-once
    /// keys then coincide.
    #[test]
    fn semantics_agree_when_signatures_are_unique(
        biases in proptest::collection::vec(1u8..=99, 1..4),
    ) {
        use std::fmt::Write as _;
        let mut src = String::new();
        let mut distinct: Vec<u8> = biases;
        distinct.sort_unstable();
        distinct.dedup();
        for (i, b) in distinct.iter().enumerate() {
            let p = f64::from(*b) / 100.0;
            let _ = writeln!(src, "R{i}(Flip<{p}>) :- true.");
        }
        let a = Engine::from_source(&src, SemanticsMode::Grohe).unwrap();
        let b = Engine::from_source(&src, SemanticsMode::Barany).unwrap();
        let wa = a.eval().exact().worlds().unwrap();
        let wb = b.eval().exact().worlds().unwrap();
        // Compare by canonical text (catalogs differ between engines).
        let ta = wa.table(&a.program().catalog);
        let tb = wb.table(&b.program().catalog);
        prop_assert_eq!(ta.len(), tb.len());
        for ((sa, pa), (sb, pb)) in ta.iter().zip(&tb) {
            prop_assert_eq!(sa, sb);
            prop_assert!((pa - pb).abs() < 1e-12);
        }
    }
}
