//! Acceptance suite for conditioning (PR 4): likelihood-weighted
//! Monte-Carlo posteriors converge to the exactly-enumerated renormalized
//! conditional, the weighted run stream is bit-identical for a fixed seed
//! across worker counts, and a conditional batch request through the
//! serving layer answers exactly like the single-session path.

use gdatalog::pdb::{DeficitKind, WorldSink};
use gdatalog::prelude::*;

/// A diagnostic chain with a non-trivial posterior: quakes are rare, but
/// alarms are much likelier under a quake.
const DIAGNOSIS: &str = r#"
    Quake(Flip<0.2>) :- true.
    Trig(Flip<0.7>) :- Quake(1).
    Trig(Flip<0.1>) :- Quake(0).
    Alarm() :- Trig(1).
"#;

#[test]
fn lw_mc_posterior_converges_to_exact_renormalized_conditional() {
    let session = Session::from_source(DIAGNOSIS, SemanticsMode::Grohe).unwrap();
    let quake = session.program().catalog.require("Quake").unwrap();
    let fact = Fact::new(quake, tuple![1i64]);

    // Exact conditional: filter + renormalize the enumerated table.
    let exact = session
        .eval()
        .exact()
        .given("Alarm().")
        .marginal(&fact)
        .unwrap();
    // Bayes by hand: 0.2·0.7 / (0.2·0.7 + 0.8·0.1).
    assert!((exact - 0.14 / 0.22).abs() < 1e-12);

    // The exact parallel chase renormalizes to the same conditional.
    let exact_par = session
        .eval()
        .exact_parallel()
        .given("Alarm().")
        .marginal(&fact)
        .unwrap();
    assert!((exact_par - exact).abs() < 1e-12);

    // Likelihood-weighted MC converges (seeded, fixed tolerance).
    for seed in [3, 7, 1234] {
        let mc = session
            .eval()
            .sample(60_000)
            .seed(seed)
            .given("Alarm().")
            .marginal(&fact)
            .unwrap();
        assert!((mc - exact).abs() < 0.02, "seed {seed}: {mc} vs {exact}");
    }

    // Soft evidence too: observing a Flip outcome directly weights by its
    // pmf, which for a discrete program must match exact conditioning.
    let soft = "Flip<0.7> == 1 :- Quake(1).";
    let exact_soft = session.eval().exact().given(soft).marginal(&fact).unwrap();
    let mc_soft = session
        .eval()
        .sample(60_000)
        .seed(5)
        .given(soft)
        .marginal(&fact)
        .unwrap();
    assert!((mc_soft - exact_soft).abs() < 0.02);
}

#[test]
fn posterior_world_table_is_renormalized_on_both_backends() {
    let session = Session::from_source(DIAGNOSIS, SemanticsMode::Grohe).unwrap();
    let exact = session.eval().exact().given("Alarm().").worlds().unwrap();
    assert!((exact.mass() - 1.0).abs() < 1e-12, "posterior sums to 1");
    assert_eq!(exact.deficit().total(), 0.0);
    let mc = session
        .eval()
        .sample(20_000)
        .seed(9)
        .given("Alarm().")
        .worlds()
        .unwrap();
    assert!((mc.mass() - 1.0).abs() < 1e-12);
    assert!(exact.total_variation(&mc) < 0.03);
}

/// Records every observation as `(canonical world text, weight bits)` so
/// streams can be compared **bitwise** as multisets across worker counts.
struct RecordingSink {
    catalog: Catalog,
    rows: Vec<(String, u64)>,
}

impl WorldSink for RecordingSink {
    fn observe(&mut self, world: Instance, weight: f64) {
        self.rows.push((
            gdatalog::data::canonical_text(&world, &self.catalog),
            weight.to_bits(),
        ));
    }

    fn observe_deficit(&mut self, _kind: DeficitKind, _weight: f64) {}

    fn fork(&self) -> Option<Box<dyn WorldSink>> {
        Some(Box::new(RecordingSink {
            catalog: self.catalog.clone(),
            rows: Vec::new(),
        }))
    }

    fn join(&mut self, forked: Box<dyn WorldSink>) {
        let other = forked
            .into_any()
            .downcast::<RecordingSink>()
            .expect("forked from self");
        self.rows.extend(other.rows);
    }

    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

#[test]
fn weighted_run_stream_is_bit_identical_across_worker_counts() {
    let session = Session::from_source(DIAGNOSIS, SemanticsMode::Grohe).unwrap();
    let catalog = session.program().catalog.clone();
    let stream = |threads: usize| {
        let mut sink = RecordingSink {
            catalog: catalog.clone(),
            rows: Vec::new(),
        };
        session
            .eval()
            .sample(8_000)
            .seed(42)
            .threads(threads)
            .given("Alarm().")
            .collect_into(&mut sink)
            .unwrap();
        let mut rows = sink.rows;
        rows.sort();
        rows
    };
    let reference = stream(1);
    assert!(!reference.is_empty());
    for threads in [2, 3, 4, 8] {
        assert_eq!(
            reference,
            stream(threads),
            "the multiset of (world, weight) observations must be \
             bit-identical for {threads} workers"
        );
    }
    // Repeat runs are bit-identical too.
    assert_eq!(reference, stream(1));
}

#[test]
fn conditional_batch_through_serve_equals_single_session_path() {
    let server = Server::from_source(DIAGNOSIS, SemanticsMode::Grohe)
        .unwrap()
        .threads(4);
    let requests: Vec<Request> = vec![
        Request::marginal("Quake(1)").given("Alarm().").exact(),
        Request::marginal("Quake(1)")
            .given("Alarm().")
            .mc(20_000)
            .seed(7),
        Request::marginals("Quake").given("Alarm().").exact(),
        Request::probability("Quake(1)").given("Alarm()."),
    ];
    let batched = server.batch(&requests);
    for (i, request) in requests.iter().enumerate() {
        let single = server.execute(request).unwrap();
        assert_eq!(&single, batched[i].as_ref().unwrap(), "slot {i}");
    }
    // And both agree with the session API directly.
    let session = Session::from_source(DIAGNOSIS, SemanticsMode::Grohe).unwrap();
    let quake = session.program().catalog.require("Quake").unwrap();
    let expect = session
        .eval()
        .exact()
        .given("Alarm().")
        .marginal(&Fact::new(quake, tuple![1i64]))
        .unwrap();
    let Response::Marginal(p) = batched[0].as_ref().unwrap().single() else {
        panic!("marginal expected");
    };
    assert_eq!(p.to_bits(), expect.to_bits());
}

#[test]
fn evidence_summary_reports_mass_and_ess() {
    let session = Session::from_source(DIAGNOSIS, SemanticsMode::Grohe).unwrap();
    // Exact: the evidence mass is P(Alarm) = 0.2·0.7 + 0.8·0.1 = 0.22.
    let exact = session.eval().exact().given("Alarm().").evidence().unwrap();
    assert!((exact.mass - 0.22).abs() < 1e-12);
    // MC: the self-normalizing constant estimates the same quantity, and
    // the ESS is bounded by the number of surviving runs.
    let mc = session
        .eval()
        .sample(30_000)
        .seed(21)
        .given("Alarm().")
        .evidence()
        .unwrap();
    assert!((mc.mass - 0.22).abs() < 0.02);
    assert!(mc.ess > 0.0 && mc.ess <= mc.worlds as f64 + 1e-9);
    // Hard evidence only: all surviving weights are equal, so ESS equals
    // the surviving run count exactly.
    assert!((mc.ess - mc.worlds as f64).abs() < 1e-6);
}
