//! Integration tests for the paper's theorems: chase independence
//! (Thm. 6.1/6.2), probabilistic inputs (Thms. 4.8/5.5), weak acyclicity ⇒
//! termination (Thm. 6.3), and the FD invariant (Lemma 3.10).

use gdatalog::engine::{enumerate_parallel, enumerate_sequential, RunOutcome};
use gdatalog::prelude::*;
use gdatalog::stats::ks_two_sample;

const POLICIES: [PolicyKind; 5] = [
    PolicyKind::Canonical,
    PolicyKind::Reverse,
    PolicyKind::RoundRobin,
    PolicyKind::Random { seed: 417 },
    PolicyKind::DeterministicFirst,
];

/// Theorem 6.1 on a non-trivial discrete program: every sequential policy
/// and the parallel chase produce the identical world table.
#[test]
fn chase_independence_burglary() {
    let src = r#"
        rel City(symbol, real) input.
        rel House(symbol, symbol) input.
        City(gotham, 0.3).
        House(h1, gotham).
        House(h2, gotham).
        Earthquake(C, Flip<0.1>) :- City(C, R).
        Unit(H, C) :- House(H, C).
        Burglary(X, C, Flip<R>) :- Unit(X, C), City(C, R).
        Trig(X, Flip<0.6>) :- Unit(X, C), Earthquake(C, 1).
        Trig(X, Flip<0.9>) :- Burglary(X, C, 1).
        Alarm(X) :- Trig(X, 1).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let program = engine.program();
    let reference = engine.eval().exact().worlds().unwrap();
    assert!(reference.mass_is_consistent(1e-9));

    for kind in POLICIES {
        let w = engine
            .eval()
            .exact()
            .policy(kind)
            .keep_aux(true)
            .worlds()
            .unwrap()
            .map(|d| program.project_output(d));
        assert!(
            reference.total_variation(&w) < 1e-9,
            "policy {kind:?}: TV = {}",
            reference.total_variation(&w)
        );
    }
    let par = engine.eval().exact_parallel().worlds().unwrap();
    assert!(reference.total_variation(&par) < 1e-9, "parallel chase");
}

/// Theorem 6.1 under the *Bárány* translation too (shared experiments).
#[test]
fn chase_independence_barany_mode() {
    let src = "R(Flip<0.5>) :- true. S(Flip<0.5>) :- true. T(X) :- R(X), S(X).";
    let engine = Engine::from_source(src, SemanticsMode::Barany).unwrap();
    let program = engine.program();
    let reference = engine.eval().exact().worlds().unwrap();
    for kind in POLICIES {
        let w = engine
            .eval()
            .exact()
            .policy(kind)
            .keep_aux(true)
            .worlds()
            .unwrap()
            .map(|d| program.project_output(d));
        assert!(reference.total_variation(&w) < 1e-12, "{kind:?}");
    }
    let par = engine.eval().exact_parallel().worlds().unwrap();
    assert!(reference.total_variation(&par) < 1e-12);
}

/// Theorem 6.1 for a *continuous* program, statistically: height samples
/// produced under different policies / the parallel chase are
/// KS-indistinguishable.
#[test]
fn chase_independence_continuous_ks() {
    let src = r#"
        rel PCountry(symbol, symbol) input.
        rel CMoments(symbol, real, real) input.
        CMoments(nl, 183.8, 49.0).
        PCountry(ada, nl).
        PHeight(P, Normal<Mu, S2>) :- PCountry(P, C), CMoments(C, Mu, S2).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let ph = engine.program().catalog.require("PHeight").unwrap();
    let mut samples: Vec<Vec<f64>> = Vec::new();
    for (i, variant) in [
        ChaseVariant::Sequential(PolicyKind::Canonical),
        ChaseVariant::Sequential(PolicyKind::Reverse),
        ChaseVariant::Sequential(PolicyKind::Random { seed: 5 }),
        ChaseVariant::Parallel,
    ]
    .into_iter()
    .enumerate()
    {
        let pdb = engine
            .eval()
            .sample(4_000)
            .seed(1000 + i as u64)
            .variant(variant)
            .pdb()
            .unwrap();
        samples.push(pdb.column_values(ph, 1));
    }
    for other in &samples[1..] {
        let r = ks_two_sample(&samples[0], other);
        assert!(r.passes(1e-4), "KS p = {}", r.p_value);
    }
}

/// Theorems 4.8/5.5/6.2: on a probabilistic input, sequential and parallel
/// chases define the same output SPDB, and it equals the manual mixture.
#[test]
fn probabilistic_input_mixture_and_independence() {
    let src = r#"
        rel Device(symbol, real) input.
        Fault(D, Flip<P>) :- Device(D, P).
        Alert(D) :- Fault(D, 1).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let program = engine.program();
    let device = program.catalog.require("Device").unwrap();
    let alert = program.catalog.require("Alert").unwrap();

    // Input PDB: two worlds over the extensional schema.
    let mut w1 = Instance::new();
    w1.insert(
        device,
        Tuple::from(vec![Value::sym("pump"), Value::real(0.5)]),
    );
    let mut w2 = w1.clone();
    w2.insert(
        device,
        Tuple::from(vec![Value::sym("valve"), Value::real(0.25)]),
    );
    let mut input = PossibleWorlds::new();
    input.add(w1.clone(), 0.6);
    input.add(w2.clone(), 0.4);

    let out = engine.eval().transform(&input).unwrap();
    assert!(out.mass_is_consistent(1e-12));

    // Manual mixture check on a marginal.
    let pump_alert = Fact::new(alert, Tuple::from(vec![Value::sym("pump")]));
    let valve_alert = Fact::new(alert, Tuple::from(vec![Value::sym("valve")]));
    assert!((out.marginal(&pump_alert) - (0.6 * 0.5 + 0.4 * 0.5)).abs() < 1e-12);
    assert!((out.marginal(&valve_alert) - 0.4 * 0.25).abs() < 1e-12);

    // Per-world parallel chase gives the same mixture (Thm. 6.2).
    let mut par_mix = PossibleWorlds::new();
    for (world, p) in input.iter() {
        let part = engine
            .eval_on(Some(world))
            .exact_parallel()
            .worlds()
            .unwrap();
        for (d, q) in part.iter() {
            par_mix.add(d.clone(), p * q);
        }
    }
    assert!(out.total_variation(&par_mix) < 1e-12);
}

/// Theorem 6.3: weakly acyclic programs terminate on every path — exact
/// enumeration completes with full mass and MC never hits the budget.
#[test]
fn weak_acyclicity_implies_termination() {
    let src = r#"
        rel City(symbol, real) input.
        City(a, 0.5). City(b, 0.25).
        Quake(C, Flip<R>) :- City(C, R).
        Chain(C, Flip<0.5>) :- Quake(C, 1).
        Deep(C, Flip<0.5>) :- Chain(C, 1).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    assert!(engine.program().weakly_acyclic());
    let worlds = engine.eval().exact().worlds().unwrap();
    assert!((worlds.mass() - 1.0).abs() < 1e-9, "full mass, no deficit");
    assert_eq!(worlds.deficit().nontermination, 0.0);
    let pdb = engine.eval().sample(3_000).seed(5).pdb().unwrap();
    assert_eq!(pdb.errors(), 0);
}

/// Lemma 3.10: the induced FDs hold in every world of the exact
/// enumeration (not just along sampled runs).
#[test]
fn fd_invariant_in_every_world() {
    let src = r#"
        rel City(symbol, real) input.
        City(a, 0.5). City(b, 0.25).
        Quake(C, Flip<R>) :- City(C, R).
        Trig(C, Flip<0.6>) :- Quake(C, 1).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let raw = engine
        .eval()
        .exact()
        .policy(PolicyKind::Canonical)
        .keep_aux(true)
        .worlds()
        .unwrap();
    for (world, _) in raw.iter() {
        for fd in &engine.program().fds {
            assert!(fd.check(world).is_ok());
        }
    }
}

/// Low-level API cross-check: `enumerate_sequential` and
/// `enumerate_parallel` agree on the raw (unprojected) chase results too,
/// for a program with interacting rules.
#[test]
fn raw_enumeration_agreement() {
    let src = r#"
        Seed(1). Seed(2).
        Coin(X, Flip<0.5>) :- Seed(X).
        AllHeads(ok) :- Coin(1, 1), Coin(2, 1).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let program = engine.program();
    let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
    let seq = enumerate_sequential(
        program,
        &program.initial_instance,
        &mut policy,
        ExactConfig::default(),
    )
    .unwrap();
    let par =
        enumerate_parallel(program, &program.initial_instance, ExactConfig::default()).unwrap();
    assert!(seq.total_variation(&par) < 1e-12);
    let all_heads = program.catalog.require("AllHeads").unwrap();
    let p = seq.probability(|d| d.relation_len(all_heads) == 1);
    assert!((p - 0.25).abs() < 1e-12);
}

/// A deterministic GDatalog program computes exactly the classical Datalog
/// least fixpoint (the chase restricted to deterministic rules is the
/// semi-naive engine's semantics).
#[test]
fn deterministic_gdatalog_equals_datalog_fixpoint() {
    let src = r#"
        E(1, 2). E(2, 3). E(3, 4). E(4, 2).
        T(X, Y) :- E(X, Y).
        T(X, Z) :- T(X, Y), E(Y, Z).
    "#;
    let engine = Engine::from_source(src, SemanticsMode::Grohe).unwrap();
    let run = engine
        .eval()
        .policy(PolicyKind::Canonical)
        .seed(0)
        .max_depth(100_000)
        .trace()
        .unwrap();
    assert_eq!(run.outcome, RunOutcome::Terminated);

    // Build the same program for the datalog substrate.
    use gdatalog::datalog::{fixpoint_seminaive, Atom, DatalogProgram, DatalogRule, Term};
    let cat = &engine.program().catalog;
    let e = cat.require("E").unwrap();
    let t = cat.require("T").unwrap();
    let dl = DatalogProgram::new(vec![
        DatalogRule::new(
            Atom::new(t, vec![Term::Var(0), Term::Var(1)]),
            vec![Atom::new(e, vec![Term::Var(0), Term::Var(1)])],
            2,
        )
        .unwrap(),
        DatalogRule::new(
            Atom::new(t, vec![Term::Var(0), Term::Var(2)]),
            vec![
                Atom::new(t, vec![Term::Var(0), Term::Var(1)]),
                Atom::new(e, vec![Term::Var(1), Term::Var(2)]),
            ],
            3,
        )
        .unwrap(),
    ]);
    let (fixpoint, _) = fixpoint_seminaive(&dl, &engine.program().initial_instance);
    assert_eq!(run.instance, fixpoint);
}
