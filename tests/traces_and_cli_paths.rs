//! Integration tests for run traces (the path measure of §4.2) and the
//! fact-file loading path used by the `gdl` CLI.

use gdatalog::lang::parse_facts;
use gdatalog::prelude::*;

#[test]
fn trace_log_weight_is_sum_of_step_densities() {
    let engine = Engine::from_source(
        r#"
        rel City(symbol, real) input.
        City(a, 0.5). City(b, 0.25).
        Quake(C, Flip<R>) :- City(C, R).
        Level(C, Normal<0.0, 1.0>) :- Quake(C, 1).
        "#,
        SemanticsMode::Grohe,
    )
    .unwrap();
    for seed in 0..20 {
        let run = engine
            .eval()
            .policy(PolicyKind::Canonical)
            .seed(seed)
            .max_depth(10_000)
            .trace()
            .unwrap();
        let total: f64 = run.trace.iter().map(|t| t.log_density).sum();
        assert!((total - run.log_weight).abs() < 1e-9);
        // Deterministic steps carry zero log-density; sampled steps match
        // their distribution's density exactly.
        for step in &run.trace {
            if step.sampled.is_empty() {
                assert_eq!(step.log_density, 0.0);
            }
        }
        assert_eq!(run.trace.len(), run.steps);
    }
}

#[test]
fn discrete_path_weights_exponentiate_to_branch_probabilities() {
    // For an all-Flip program, exp(log_weight) is the exact probability of
    // the sampled leaf *given the chase order* — and summing over seeds of
    // distinct outcomes recovers the world table.
    let engine = Engine::from_source("R(Flip<0.25>) :- true.", SemanticsMode::Grohe).unwrap();
    let r = engine.program().catalog.require("R").unwrap();
    for seed in 0..10 {
        let run = engine
            .eval()
            .policy(PolicyKind::Canonical)
            .seed(seed)
            .max_depth(100)
            .trace()
            .unwrap();
        let got_one = run.instance.contains(r, &Tuple::from(vec![Value::int(1)]));
        let expect = if got_one { 0.25f64 } else { 0.75 };
        assert!((run.log_weight.exp() - expect).abs() < 1e-12);
    }
}

#[test]
fn external_fact_files_feed_the_engine() {
    let engine = Engine::from_source(
        r#"
        rel City(symbol, real) input.
        Quake(C, Flip<R>) :- City(C, R).
        "#,
        SemanticsMode::Grohe,
    )
    .unwrap();
    let catalog = &engine.program().catalog;
    let input = parse_facts("City(gotham, 1.0).\nCity(metropolis, 0.0).", catalog).unwrap();
    let worlds = engine.eval_on(Some(&input)).exact().worlds().unwrap();
    let quake = catalog.require("Quake").unwrap();
    // Deterministic parameters: exactly one world.
    assert_eq!(worlds.len(), 1);
    let p_gotham = worlds.marginal(&Fact::new(
        quake,
        Tuple::from(vec![Value::sym("gotham"), Value::int(1)]),
    ));
    let p_metropolis = worlds.marginal(&Fact::new(
        quake,
        Tuple::from(vec![Value::sym("metropolis"), Value::int(1)]),
    ));
    assert_eq!(p_gotham, 1.0);
    assert_eq!(p_metropolis, 0.0);
}

#[test]
fn runtime_parameter_errors_are_reported_not_panicked() {
    // A variance flowing from data can be invalid; the engine must surface
    // a typed error.
    let engine = Engine::from_source(
        r#"
        rel M(real) input.
        M(-1.0).
        X(Normal<0.0, V>) :- M(V).
        "#,
        SemanticsMode::Grohe,
    )
    .unwrap();
    let err = engine.eval().sample(1).pdb().unwrap_err();
    assert!(matches!(err, EngineError::Dist(_)), "{err}");
}
