//! Acceptance tests for ISSUE 5 (first-class Query IR): a `QuerySet` of K
//! queries performs **exactly one** backend pass (counted by a wrapping
//! test backend), and its bundled answers are **bit-identical** to the K
//! individual terminal calls — for exact-sequential, exact-parallel, and
//! seeded Monte-Carlo at several worker counts, with and without
//! `given(...)` conditioning — plus the ZeroEvidence and validation
//! edges.

use std::sync::atomic::{AtomicUsize, Ordering};

use gdatalog::prelude::*;

const MODEL: &str = "rel City(symbol, real) input.
    Earthquake(C, Flip<R>) :- City(C, R).
    Trig(C, Flip<0.6>) :- Earthquake(C, 1).
    Alarm(C) :- Trig(C, 1).";

const FACTS: &str = "City(gotham, 0.3). City(metropolis, 0.6).";

/// Counts how many times the wrapped backend is driven — the world-stream
/// probe behind the single-pass acceptance criterion.
struct CountingBackend<B> {
    inner: B,
    passes: AtomicUsize,
}

impl<B> CountingBackend<B> {
    fn new(inner: B) -> CountingBackend<B> {
        CountingBackend {
            inner,
            passes: AtomicUsize::new(0),
        }
    }

    fn passes(&self) -> usize {
        self.passes.load(Ordering::SeqCst)
    }
}

impl<B: Backend> Backend for CountingBackend<B> {
    fn name(&self) -> &'static str {
        "counting"
    }

    fn run(
        &self,
        job: &EvalJob<'_>,
        sink: &mut dyn gdatalog::pdb::WorldSink,
    ) -> Result<(), EngineError> {
        self.passes.fetch_add(1, Ordering::SeqCst);
        self.inner.run(job, sink)
    }
}

fn session() -> Session {
    let mut session = Session::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    session.insert_facts_text(FACTS).unwrap();
    session
}

/// The K = 7 mixed queries every test below asks — one of each kind.
fn queries(session: &Session) -> QuerySet {
    let catalog = &session.program().catalog;
    let alarm = catalog.require("Alarm").unwrap();
    let quake = catalog.require("Earthquake").unwrap();
    let gotham = Fact::new(alarm, tuple!["gotham"]);
    let metropolis = Fact::new(alarm, tuple!["metropolis"]);
    let both = Event::contains_fact(&gotham).and(Event::contains_fact(&metropolis));
    QuerySet::new()
        .marginal(&gotham)
        .marginals(alarm)
        .probability(&both)
        .expectation(&Query::Rel(alarm), AggFun::Count)
        .histogram(quake, 1, 0.0, 2.0, 2)
        .quantile(quake, 1, 0.75)
        .tail(quake, 1, 1.0)
}

/// Asserts the bundled answers equal the individual terminal results of
/// `make_eval()` **bit for bit** (each terminal call re-runs its own
/// full pass; `answers` came from one).
fn assert_bit_identical<'a>(
    session: &'a Session,
    answers: &Answers,
    make_eval: impl Fn() -> Evaluation<'a>,
) {
    let catalog = &session.program().catalog;
    let alarm = catalog.require("Alarm").unwrap();
    let quake = catalog.require("Earthquake").unwrap();
    let gotham = Fact::new(alarm, tuple!["gotham"]);
    let metropolis = Fact::new(alarm, tuple!["metropolis"]);
    let both = Event::contains_fact(&gotham).and(Event::contains_fact(&metropolis));
    assert_eq!(answers.len(), 7);

    let Answer::Marginal(p) = &answers[0] else {
        panic!("marginal expected")
    };
    let expect = make_eval().marginal(&gotham).unwrap();
    assert_eq!(p.to_bits(), expect.to_bits(), "marginal");

    let Answer::Marginals(rows) = &answers[1] else {
        panic!("marginals expected")
    };
    let expect = make_eval().marginals(alarm).unwrap();
    assert_eq!(rows.len(), expect.len(), "marginals row count");
    for ((fact, p), (expect_fact, expect_p)) in rows.iter().zip(&expect) {
        assert_eq!(fact, expect_fact);
        assert_eq!(p.to_bits(), expect_p.to_bits(), "marginals");
    }

    let Answer::Probability(p) = &answers[2] else {
        panic!("probability expected")
    };
    let expect = make_eval().probability(&both).unwrap();
    assert_eq!(p.to_bits(), expect.to_bits(), "probability");

    let Answer::Expectation(m) = &answers[3] else {
        panic!("expectation expected")
    };
    let expect = make_eval()
        .expectation(&Query::Rel(alarm), AggFun::Count)
        .unwrap();
    match (m, expect) {
        (Some(m), Some(e)) => {
            assert_eq!(m.mean.to_bits(), e.mean.to_bits(), "mean");
            assert_eq!(m.variance.to_bits(), e.variance.to_bits(), "variance");
            assert_eq!(m.mass.to_bits(), e.mass.to_bits(), "mass");
        }
        (None, None) => {}
        (got, want) => panic!("expectation mismatch: {got:?} vs {want:?}"),
    }

    let Answer::Histogram(h) = &answers[4] else {
        panic!("histogram expected")
    };
    let expect = make_eval().histogram(quake, 1, 0.0, 2.0, 2).unwrap();
    assert_eq!(h.bins.len(), expect.bins.len());
    for (a, b) in h.bins.iter().zip(&expect.bins) {
        assert_eq!(a.to_bits(), b.to_bits(), "histogram bin");
    }
    assert_eq!(h.underflow.to_bits(), expect.underflow.to_bits());
    assert_eq!(h.overflow.to_bits(), expect.overflow.to_bits());
    assert_eq!(h.nan.to_bits(), expect.nan.to_bits());
    assert_eq!(h.mass.to_bits(), expect.mass.to_bits());

    let Answer::Quantile(v) = &answers[5] else {
        panic!("quantile expected")
    };
    let expect = make_eval().quantile(quake, 1, 0.75).unwrap();
    match (v, expect) {
        (Some(v), Some(e)) => assert_eq!(v.to_bits(), e.to_bits(), "quantile"),
        (None, None) => {}
        (got, want) => panic!("quantile mismatch: {got:?} vs {want:?}"),
    }

    let Answer::Tail(p) = &answers[6] else {
        panic!("tail expected")
    };
    let expect = make_eval().tail_probability(quake, 1, 1.0).unwrap();
    assert_eq!(p.to_bits(), expect.to_bits(), "tail");

    // The shared evidence summary matches the evidence() terminal too.
    let expect = make_eval().evidence().unwrap();
    let ev = answers.evidence();
    assert_eq!(ev.mass.to_bits(), expect.mass.to_bits(), "evidence mass");
    assert_eq!(ev.ess.to_bits(), expect.ess.to_bits(), "evidence ess");
    assert_eq!(ev.worlds, expect.worlds, "evidence worlds");
}

#[test]
fn a_query_set_of_k_queries_runs_exactly_one_backend_pass() {
    let session = session();
    let queries = queries(&session);
    assert_eq!(queries.len(), 7);

    let exact = CountingBackend::new(ExactSequentialBackend);
    let answers = session.eval().answer_with(&exact, &queries).unwrap();
    assert_eq!(exact.passes(), 1, "7 queries, 1 exact pass");
    assert_eq!(answers.len(), 7);

    let par = CountingBackend::new(ExactParallelBackend);
    session.eval().answer_with(&par, &queries).unwrap();
    assert_eq!(par.passes(), 1, "7 queries, 1 exact-parallel pass");

    let mc = CountingBackend::new(McBackend);
    session
        .eval()
        .sample(500)
        .seed(3)
        .answer_with(&mc, &queries)
        .unwrap();
    assert_eq!(mc.passes(), 1, "7 queries, 1 Monte-Carlo pass");

    // Conditioned: still one pass — normalization is shared, not re-run.
    let conditioned = CountingBackend::new(ExactSequentialBackend);
    session
        .eval()
        .given("Alarm(gotham).")
        .answer_with(&conditioned, &queries)
        .unwrap();
    assert_eq!(conditioned.passes(), 1, "conditioning shares the pass");

    // The K individual terminals, by contrast, pay K passes.
    let terminals = CountingBackend::new(ExactSequentialBackend);
    let alarm = session.program().catalog.require("Alarm").unwrap();
    for _ in 0..3 {
        session
            .eval()
            .answer_with(&terminals, &QuerySet::new().marginals(alarm))
            .unwrap();
    }
    assert_eq!(terminals.passes(), 3, "one pass per single-query call");
}

#[test]
fn answers_are_bit_identical_to_terminals_exact_sequential() {
    let session = session();
    let answers = session.eval().exact().answer(&queries(&session)).unwrap();
    assert_bit_identical(&session, &answers, || session.eval().exact());
}

#[test]
fn answers_are_bit_identical_to_terminals_exact_parallel() {
    let session = session();
    let answers = session
        .eval()
        .exact_parallel()
        .answer(&queries(&session))
        .unwrap();
    assert_bit_identical(&session, &answers, || session.eval().exact_parallel());
}

#[test]
fn answers_are_bit_identical_to_terminals_seeded_mc_any_worker_count() {
    let session = session();
    for threads in [1usize, 2, 4] {
        let answers = session
            .eval()
            .sample(5_000)
            .seed(11)
            .threads(threads)
            .answer(&queries(&session))
            .unwrap();
        assert_bit_identical(&session, &answers, || {
            session.eval().sample(5_000).seed(11).threads(threads)
        });
    }
}

#[test]
fn conditioned_answers_are_bit_identical_and_share_one_normalizer() {
    let session = session();
    let given = "Alarm(gotham).";
    // Exact.
    let answers = session
        .eval()
        .exact()
        .given(given)
        .answer(&queries(&session))
        .unwrap();
    assert!(answers.conditioned());
    assert_bit_identical(&session, &answers, || session.eval().exact().given(given));
    // Posterior sanity: conditioning on the alarm forces the quake.
    let quake = session.program().catalog.require("Earthquake").unwrap();
    let posterior = session
        .eval()
        .exact()
        .given(given)
        .marginal(&Fact::new(quake, tuple!["gotham", 1i64]))
        .unwrap();
    assert!((posterior - 1.0).abs() < 1e-12);

    // Likelihood-weighted Monte-Carlo, several worker counts.
    for threads in [1usize, 4] {
        let answers = session
            .eval()
            .sample(5_000)
            .seed(29)
            .threads(threads)
            .given(given)
            .answer(&queries(&session))
            .unwrap();
        assert!(answers.conditioned());
        assert!(answers.evidence().mass > 0.0);
        assert!(answers.evidence().ess >= 1.0);
        assert_bit_identical(&session, &answers, || {
            session
                .eval()
                .sample(5_000)
                .seed(29)
                .threads(threads)
                .given(given)
        });
    }
}

#[test]
fn zero_evidence_rejects_the_whole_bundle() {
    let session = session();
    // Alarm(nowhere) is underivable: conditioning on it leaves no mass.
    let err = session
        .eval()
        .exact()
        .given("Alarm(nowhere).")
        .answer(&queries(&session))
        .unwrap_err();
    assert!(matches!(err, EngineError::ZeroEvidence));
    let err = session
        .eval()
        .sample(200)
        .seed(1)
        .given("Alarm(nowhere).")
        .answer(&queries(&session))
        .unwrap_err();
    assert!(matches!(err, EngineError::ZeroEvidence));
}

#[test]
fn empty_query_set_reports_diagnostics_only() {
    let session = session();
    let answers = session.eval().exact().answer(&QuerySet::new()).unwrap();
    assert!(answers.is_empty());
    assert!(!answers.conditioned());
    assert!((answers.evidence().mass - 1.0).abs() < 1e-12, "full mass");
    let expect = session.eval().exact().evidence().unwrap();
    assert_eq!(answers.evidence().worlds, expect.worlds);
}

#[test]
fn invalid_queries_error_before_any_backend_work() {
    let session = session();
    let quake = session.program().catalog.require("Earthquake").unwrap();
    let bad_sets = [
        QuerySet::new().histogram(quake, 9, 0.0, 1.0, 4), // col out of range
        QuerySet::new().histogram(quake, 1, 1.0, 0.0, 4), // lo >= hi
        QuerySet::new().histogram(quake, 1, 0.0, 1.0, 0), // no bins
        QuerySet::new().histogram(quake, 1, f64::NEG_INFINITY, 1.0, 4),
        QuerySet::new().quantile(quake, 1, 1.5), // q out of range
        QuerySet::new().quantile(quake, 9, 0.5),
        QuerySet::new().tail(quake, 1, f64::NAN),
        QuerySet::new().marginals(RelId(999)), // unknown relation id
    ];
    let probe = CountingBackend::new(ExactSequentialBackend);
    for set in &bad_sets {
        let err = session.eval().answer_with(&probe, set).unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)), "{set:?}");
    }
    assert_eq!(probe.passes(), 0, "validation precedes evaluation");
}

#[test]
fn tail_counts_infinite_values_and_quantile_agrees() {
    // ColPred::Range is half-open, so [threshold, ∞) alone would miss a
    // column value of exactly +inf; tail_event disjoins an explicit +inf
    // clause so the two statistics agree on the same data.
    use gdatalog::engine::tail_event;
    use gdatalog::pdb::{EventProbabilitySink, QuantileSink, WorldSink};
    let rel = RelId(0);
    let mut world = Instance::new();
    world.insert(rel, tuple![f64::INFINITY]);
    let mut tail = EventProbabilitySink::new(tail_event(rel, 0, 100.0));
    let mut top = QuantileSink::new(rel, 0, 1.0);
    tail.observe(world.clone(), 1.0);
    top.observe(world, 1.0);
    assert_eq!(tail.finish(), 1.0, "+inf >= 100 must count");
    assert_eq!(top.finish(), Some(f64::INFINITY), "quantile sees it too");
    // threshold = +inf: only +inf itself reaches it.
    let mut only_inf = EventProbabilitySink::new(tail_event(rel, 0, f64::INFINITY));
    let mut finite = Instance::new();
    finite.insert(rel, tuple![1e300]);
    only_inf.observe(finite, 1.0);
    assert_eq!(only_inf.finish(), 0.0, "finite values stay below +inf");
}

#[test]
fn expectation_query_trees_are_validated_not_panicked() {
    // An out-of-arity projection/selection/aggregate column inside the
    // relational-algebra tree must be InvalidRequest at validation time,
    // not an index panic in the middle of the backend pass.
    let session = session();
    let quake = session.program().catalog.require("Earthquake").unwrap();
    let bad_trees = [
        Query::Rel(quake).project(vec![9]),
        Query::Rel(quake).select(vec![(9, gdatalog::pdb::ColPred::Any)]),
        Query::Rel(quake).join(Query::Rel(quake), vec![(0, 9)]),
        Query::Rel(quake).aggregate(vec![9], AggFun::Count, 0),
        Query::Rel(quake).aggregate(vec![], AggFun::Sum, 9),
    ];
    for tree in bad_trees {
        let err = session
            .eval()
            .exact()
            .expectation(&tree, AggFun::Count)
            .unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)), "{tree:?}");
    }
    // Count ignores its aggregated column, so an out-of-range `col`
    // there is legal — exactly as the evaluator treats it.
    let ok = Query::Rel(quake).aggregate(vec![0], AggFun::Count, 9);
    assert!(session
        .eval()
        .exact()
        .expectation(&ok, AggFun::Count)
        .is_ok());
}

#[test]
fn quantile_and_tail_answer_continuous_programs() {
    // Heights model (Example 3.5 flavor): a Normal(170, 100) column.
    let session = Session::from_source(
        "rel Person(symbol) input.
         Height(P, Normal<170.0, 100.0>) :- Person(P).",
        SemanticsMode::Grohe,
    )
    .unwrap();
    let mut session = session;
    session.insert_facts_text("Person(ada).").unwrap();
    let height = session.program().catalog.require("Height").unwrap();
    let queries = QuerySet::new()
        .quantile(height, 1, 0.5)
        .quantile(height, 1, 0.975)
        .tail(height, 1, 170.0);
    let answers = session
        .eval()
        .sample(20_000)
        .seed(5)
        .answer(&queries)
        .unwrap();
    let Answer::Quantile(Some(median)) = answers[0] else {
        panic!("median expected")
    };
    assert!((median - 170.0).abs() < 0.5, "median {median}");
    let Answer::Quantile(Some(p975)) = answers[1] else {
        panic!("quantile expected")
    };
    assert!((p975 - (170.0 + 1.96 * 10.0)).abs() < 1.0, "p97.5 {p975}");
    let Answer::Tail(tail) = answers[2] else {
        panic!("tail expected")
    };
    assert!((tail - 0.5).abs() < 0.02, "P(height >= mean) ≈ 1/2, {tail}");
}

#[test]
fn serve_multi_query_request_equals_single_query_requests_bitwise() {
    let server = Server::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    let kinds = [
        QueryKind::Marginal {
            fact: "Alarm(gotham)".into(),
        },
        QueryKind::Marginals {
            rel: "Alarm".into(),
        },
        QueryKind::Expectation {
            rel: "Alarm".into(),
            agg: AggFun::Count,
            col: None,
        },
        QueryKind::Histogram {
            rel: "Earthquake".into(),
            col: 1,
            lo: 0.0,
            hi: 2.0,
            bins: 2,
        },
        QueryKind::Quantile {
            rel: "Earthquake".into(),
            col: 1,
            q: 0.75,
        },
        QueryKind::Tail {
            rel: "Earthquake".into(),
            col: 1,
            threshold: 1.0,
        },
    ];
    for mc in [false, true] {
        let configure = |req: Request| {
            let req = req.input(FACTS);
            if mc {
                req.mc(3_000).seed(17)
            } else {
                req.exact()
            }
        };
        let multi = configure(Request::multi(kinds.to_vec()));
        let reply = server.execute(&multi).unwrap();
        assert_eq!(reply.responses.len(), kinds.len());
        assert!(reply.evidence.is_none(), "unconditioned: no diagnostics");
        for (kind, response) in kinds.iter().zip(&reply.responses) {
            let single = configure(Request::multi(vec![kind.clone()]));
            let expect = server.execute(&single).unwrap();
            assert_eq!(response, expect.single(), "kind {kind:?} (mc {mc})");
        }
    }
}

#[test]
fn serve_conditioned_reply_carries_evidence_diagnostics() {
    let server = Server::from_source(MODEL, SemanticsMode::Grohe).unwrap();
    let request = Request::marginal("Earthquake(gotham, 1)")
        .query(QueryKind::Marginals {
            rel: "Alarm".into(),
        })
        .input(FACTS)
        .given("Alarm(gotham).")
        .exact();
    let reply = server.execute(&request).unwrap();
    assert_eq!(reply.responses.len(), 2);
    assert_eq!(reply.responses[0], Response::Marginal(1.0));
    let ev = reply
        .evidence
        .expect("conditioned reply carries diagnostics");
    // P(Alarm(gotham)) = 0.3 · 0.6.
    assert!((ev.mass - 0.18).abs() < 1e-12);
    assert!(ev.ess >= 1.0);
    // And the JSON rendering carries them too.
    let rendered = reply.to_json().render();
    assert!(rendered.contains("\"evidence\""), "{rendered}");
}
