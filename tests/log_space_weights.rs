//! The underflow regime (PR 8): conditioning whose total log-likelihood
//! sits far below ln(f64::MIN_POSITIVE) ≈ −745 must still produce correct
//! posteriors. Linear-space weighting — the pre-log-space pipeline —
//! demonstrably collapses here (`exp` of every world's log-weight is 0.0,
//! so all posterior mass vanishes); the streaming log-sum-exp pipeline
//! keeps the arithmetic in log space end-to-end and is exercised against
//! an analytically solvable program with ~400 soft Normal observations.
//!
//! Alongside the regression sits a property suite for the accumulator
//! itself: `NormalizingSink::log_space` / `WeightStats` must be
//! permutation-invariant, translation-invariant (shifting every
//! log-weight by `c` shifts the log-total by exactly `c` and preserves
//! the ESS), and must keep the effective sample size inside `[1, n]`.

use gdatalog::pdb::{NormalizingSink, WeightStats, WorldSink, WorldTableSink};
use gdatalog::prelude::*;
use proptest::prelude::*;

/// Soft Normal observations stacked on the same latent choice.
const OBS_COUNT: usize = 400;

/// The latent values are deliberately close so the posterior is
/// non-degenerate even with 400 observations: the per-observation
/// log-density gap is ~0.003, summing to a total log-odds of ~1.2.
const MU_LO: f64 = 0.0;
const MU_HI: f64 = 0.001;
const OBS_VALUE: f64 = 3.0;

fn underflow_session() -> Session {
    let src = r#"
        rel T(int) input.
        Mu(Categorical<0.0, 1.0, 0.001, 1.0>) :- true.
    "#;
    let mut session = Session::from_source(src, SemanticsMode::Grohe).unwrap();
    let facts: String = (0..OBS_COUNT).map(|i| format!("T({i}). ")).collect();
    session.insert_facts_text(&facts).unwrap();
    session
}

/// One soft statement, matched once per `T` row: 400 Normal likelihood
/// factors on whichever `Mu` the world chose.
const GIVEN: &str = "Normal<M, 1.0> == 3.0 :- Mu(M), T(I).";

fn ln_phi(x: f64) -> f64 {
    -0.5 * x * x - 0.5 * (2.0 * std::f64::consts::PI).ln()
}

/// Summed log-likelihood of the world that chose `mu`.
fn log_like(mu: f64) -> f64 {
    OBS_COUNT as f64 * ln_phi(OBS_VALUE - mu)
}

/// Analytic posterior `P(Mu = MU_HI | observations)` (equal priors).
fn analytic_posterior_hi() -> f64 {
    1.0 / (1.0 + (log_like(MU_LO) - log_like(MU_HI)).exp())
}

/// Analytic log evidence `ln(½·e^{ll_lo} + ½·e^{ll_hi})`.
fn analytic_log_evidence() -> f64 {
    let (lo, hi) = (log_like(MU_LO), log_like(MU_HI));
    let m = lo.max(hi);
    0.5f64.ln() + m + ((lo - m).exp() + (hi - m).exp()).ln()
}

#[test]
fn linear_weighting_demonstrably_underflows_to_zero() {
    let session = underflow_session();
    let program = session.program();
    let observes = gdatalog::lang::compile_observations(program, GIVEN).unwrap();
    // A support world, built by hand: Mu chose MU_LO, all T rows present.
    let mu = program.catalog.require("Mu").unwrap();
    let t = program.catalog.require("T").unwrap();
    let mut world = Instance::new();
    world.insert(mu, tuple![MU_LO]);
    for i in 0..OBS_COUNT as i64 {
        world.insert(t, tuple![i]);
    }
    let lw = gdatalog::engine::log_weight(&observes, &world).unwrap();
    assert!(
        lw.is_finite() && lw < -2_000.0,
        "the regression program must sit deep in the underflow regime, \
         got log-likelihood {lw}"
    );
    assert!(
        (lw - log_like(MU_LO)).abs() < 1e-6,
        "{lw} vs {}",
        log_like(MU_LO)
    );
    // The old linear path: exp(−2167) is exactly 0.0 in f64, so every
    // world's weight — and with it all posterior mass — vanishes.
    assert_eq!(
        gdatalog::engine::observation_weight(&observes, &world).unwrap(),
        0.0,
        "linear-space weighting must underflow here — that is the regime \
         this regression guards"
    );
}

#[test]
fn exact_posterior_is_correct_in_the_underflow_regime() {
    let session = underflow_session();
    let mu = session.program().catalog.require("Mu").unwrap();
    let fact = Fact::new(mu, tuple![MU_HI]);
    let queries = QuerySet::new().marginal(&fact);
    let answers = session
        .eval()
        .exact()
        .given(GIVEN)
        .answer(&queries)
        .unwrap();
    let p = answers.get(0).unwrap().as_probability().unwrap();
    let expect = analytic_posterior_hi();
    assert!(
        (p - expect).abs() < 1e-9,
        "exact posterior {p} vs analytic {expect}"
    );
    let ev = answers.evidence();
    // The linear mass is 0 by necessity (it is exp(log_mass)); the log
    // mass is the real answer and must match the analytic evidence.
    assert_eq!(ev.mass, 0.0, "exp(-2167) is 0 in f64");
    assert!(
        (ev.log_mass - analytic_log_evidence()).abs() < 1e-6,
        "log evidence {} vs analytic {}",
        ev.log_mass,
        analytic_log_evidence()
    );
}

#[test]
fn sampling_backends_are_correct_in_the_underflow_regime() {
    let session = underflow_session();
    let mu = session.program().catalog.require("Mu").unwrap();
    let fact = Fact::new(mu, tuple![MU_HI]);
    let expect = analytic_posterior_hi();
    let queries = QuerySet::new().marginal(&fact);

    // Likelihood weighting: the weights are e^{-2167.57} and e^{-2166.37}
    // — only their log-space ratio survives, which is exactly what the
    // streaming accumulator preserves.
    let answers = session
        .eval()
        .sample(20_000)
        .seed(11)
        .given(GIVEN)
        .answer(&queries)
        .unwrap();
    let lw = answers.get(0).unwrap().as_probability().unwrap();
    let ev = answers.evidence();
    let se = (expect * (1.0 - expect) / ev.ess.max(1.0)).sqrt();
    assert!(
        (lw - expect).abs() <= 5.0 * se + 1e-4,
        "lw posterior {lw} vs analytic {expect}: |Δ| = {} exceeds 5·se = {} (ess {})",
        (lw - expect).abs(),
        5.0 * se,
        ev.ess
    );
    assert_eq!(ev.mass, 0.0);
    assert!(
        ev.log_mass.is_finite() && ev.log_mass < -2_000.0,
        "LW must report a finite log evidence deep below the underflow \
         line, got {}",
        ev.log_mass
    );

    // The MH chain only ever uses log-likelihood *differences*, so the
    // underflow regime is its home turf.
    let mh = session
        .eval()
        .mh(20_000)
        .burn_in(500)
        .seed(13)
        .given(GIVEN)
        .marginal(&fact)
        .unwrap();
    let n_eff = 20_000.0 / 20.0;
    let se = (expect * (1.0 - expect) / n_eff).sqrt();
    assert!(
        (mh - expect).abs() <= 5.0 * se + 1e-4,
        "mh posterior {mh} vs analytic {expect}: |Δ| = {} exceeds 5·se = {}",
        (mh - expect).abs(),
        5.0 * se
    );
}

// ---------------------------------------------------------------------------
// Property suite for the streaming log-sum-exp accumulator.
// ---------------------------------------------------------------------------

/// Folds a sequence of log-weights through `NormalizingSink::log_space`
/// and returns the resulting statistics.
fn accumulate(log_weights: &[f64]) -> WeightStats {
    let mut sink = NormalizingSink::log_space(WorldTableSink::new());
    for &lw in log_weights {
        sink.observe_log(Instance::new(), lw);
    }
    let (_table, stats) = sink.finish();
    stats
}

/// Deterministic Fisher-Yates driven by splitmix64, so shuffles are
/// reproducible from the proptest case seed.
fn shuffled(values: &[f64], mut seed: u64) -> Vec<f64> {
    let mut next = move || {
        seed = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    let mut out = values.to_vec();
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn log_sum_exp_is_permutation_invariant(
        lws in proptest::collection::vec(-900.0..10.0, 1..40),
        perm_seed in any::<u64>(),
    ) {
        let a = accumulate(&lws);
        let b = accumulate(&shuffled(&lws, perm_seed));
        prop_assert!(
            close(a.log_total(), b.log_total(), 1e-9),
            "log_total order-dependent: {} vs {}", a.log_total(), b.log_total()
        );
        prop_assert!(
            close(a.ess(), b.ess(), 1e-6),
            "ess order-dependent: {} vs {}", a.ess(), b.ess()
        );
        prop_assert_eq!(a.worlds, b.worlds);
    }

    #[test]
    fn log_sum_exp_is_translation_invariant(
        lws in proptest::collection::vec(-900.0..10.0, 1..40),
        shift in -700.0..700.0,
    ) {
        let base = accumulate(&lws);
        let moved = accumulate(&lws.iter().map(|lw| lw + shift).collect::<Vec<_>>());
        // Multiplying every weight by e^shift multiplies the total by
        // e^shift — i.e. shifts the log-total by exactly shift — and
        // leaves the (scale-free) effective sample size alone.
        prop_assert!(
            close(moved.log_total(), base.log_total() + shift, 1e-9),
            "log_total {} + shift {shift} vs {}", base.log_total(), moved.log_total()
        );
        prop_assert!(
            close(base.ess(), moved.ess(), 1e-6),
            "ess not translation-invariant: {} vs {}", base.ess(), moved.ess()
        );
    }

    #[test]
    fn ess_stays_within_one_and_n(
        lws in proptest::collection::vec(-900.0..10.0, 1..40),
    ) {
        let stats = accumulate(&lws);
        let n = lws.len() as f64;
        prop_assert!(
            stats.ess() >= 1.0 - 1e-9 && stats.ess() <= n + 1e-9,
            "ess {} outside [1, {n}]", stats.ess()
        );
        // Equal weights are the ESS = n extremum.
        let uniform = accumulate(&vec![lws[0]; lws.len()]);
        prop_assert!(
            close(uniform.ess(), n, 1e-9),
            "uniform-weight ess {} should be n = {n}", uniform.ess()
        );
    }
}
