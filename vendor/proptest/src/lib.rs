//! In-tree property-testing shim.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of the `proptest` API the workspace's test suites use:
//! the [`Strategy`] trait with `prop_map`, [`collection::vec`], range and
//! `any::<T>()` strategies, a regex-lite string strategy (character classes
//! with `{m,n}` repeats), weighted [`prop_oneof!`], and the [`proptest!`]
//! test macro with `prop_assert!`-style assertions.
//!
//! Semantics differ from real proptest in one deliberate way: failing
//! inputs are **not shrunk** — the failing case is reported as generated.
//! Generation is deterministic per (test name, case index), so failures
//! reproduce across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic per-case generator (SplitMix64 stream).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Generator for case `case` of test `name`; deterministic across runs.
    pub fn for_case(name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for test-input generation.
        self.next_u64() % n
    }
}

/// Failure raised by a property-test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// A failed-property error with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union of type-erased strategies (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a positive value.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// `any::<T>()` — the full-domain strategy for primitive `T`.
pub fn any<T: ArbitraryPrimitive>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Marker for primitives supported by [`any`].
pub trait ArbitraryPrimitive {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryPrimitive for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl ArbitraryPrimitive for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}
impl ArbitraryPrimitive for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}
impl ArbitraryPrimitive for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryPrimitive> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Regex-lite string strategies: sequences of `[class]{m,n}` atoms.
// ---------------------------------------------------------------------------

struct PatternAtom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => return out,
            '\\' => {
                let esc = chars.next().expect("dangling escape in pattern");
                let lit = match esc {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                };
                out.push(lit);
                prev = Some(lit);
            }
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let hi = chars.next().expect("range end");
                let lo = prev.take().expect("range start");
                for code in (lo as u32 + 1)..=(hi as u32) {
                    out.push(char::from_u32(code).expect("valid char range"));
                }
            }
            other => {
                out.push(other);
                prev = Some(other);
            }
        }
    }
    panic!("unterminated character class in pattern");
}

fn parse_pattern(pattern: &str) -> Vec<PatternAtom> {
    let mut atoms = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let set = match c {
            '[' => parse_class(&mut chars),
            '\\' => {
                let esc = chars.next().expect("dangling escape in pattern");
                vec![match esc {
                    'n' => '\n',
                    't' => '\t',
                    other => other,
                }]
            }
            other => vec![other],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repeat lower bound"),
                    hi.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let n = spec.trim().parse().expect("repeat count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push(PatternAtom {
            chars: set,
            min,
            max,
        });
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------------

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vectors of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module typically imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Chooses among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `config.cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (@tests ($config:expr) ) => {};
    (@tests ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), case, config.cases, e
                    );
                }
            }
        }
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_strategy_shapes() {
        let mut rng = crate::TestRng::for_case("shape", 0);
        for _ in 0..50 {
            let s = crate::Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().expect("nonempty").is_ascii_lowercase());
        }
        let printable = crate::Strategy::generate(&"[ -~\\n]{0,200}", &mut rng);
        assert!(printable
            .chars()
            .all(|c| c == '\n' || (' '..='~').contains(&c)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_ranges_in_bounds(x in 3i64..10, w in 1u8..=4, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&w));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_oneof_compose(
            v in crate::collection::vec(prop_oneof![2 => Just(1u8), 1 => Just(2u8)], 0..5)
        ) {
            prop_assert!(v.len() < 5);
            prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        }
    }
}
