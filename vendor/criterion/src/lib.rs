//! In-tree benchmark-harness shim.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of the `criterion` API the bench suite uses: `Criterion`,
//! benchmark groups, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is run for
//! a fixed number of timed samples after a warm-up; the **median
//! nanoseconds per iteration** is printed and appended to
//! `target/criterion-medians.jsonl` (one JSON object per line) so tooling
//! can consume results without parsing human output.

use std::fmt;
use std::time::Instant;

/// Identifier for a parameterized benchmark, rendered as `function/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("seminaive", 128)` → `seminaive/128`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// `BenchmarkId::from_parameter(128)` → `128`.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured per-iteration times in nanoseconds.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, recording one sample per measured batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: aim for batches of at least
        // ~1 ms so Instant overhead is negligible, capped for slow bodies.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as f64;
        let batch = ((1_000_000.0 / once).ceil() as usize).clamp(1, 1_000_000);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples.push(ns);
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        0.5 * (samples[n / 2 - 1] + samples[n / 2])
    }
}

fn record(group: Option<&str>, name: &str, median_ns: f64) {
    let full = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    println!("bench {full:<48} median {:>14.1} ns/iter", median_ns);
    let line = format!("{{\"bench\":\"{full}\",\"median_ns\":{median_ns:.1}}}\n");
    let path = std::path::Path::new("target");
    if path.is_dir() {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.join("criterion-medians.jsonl"))
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

fn run_bench(group: Option<&str>, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    record(group, name, median(&mut b.samples));
}

/// Throughput annotation (accepted for API compatibility; the shim reports
/// plain per-iteration medians).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Records the group's throughput unit (no-op in the shim).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark under `group/id`.
    pub fn bench_function(&mut self, id: impl fmt::Display, mut f: impl FnMut(&mut Bencher)) {
        run_bench(Some(&self.name), &id.to_string(), self.sample_size, &mut f);
    }

    /// Runs a parameterized benchmark; the input is passed by reference.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_bench(
            Some(&self.name),
            &id.to_string(),
            self.sample_size,
            &mut |b| f(b, input),
        );
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Fresh harness with the default sample count.
    pub fn new() -> Self {
        Criterion { sample_size: 20 }
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        run_bench(None, name, self.sample_size, &mut f);
    }
}

/// Re-export for code written against `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function list.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench-harness `main` (use with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
