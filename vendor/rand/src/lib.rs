//! In-tree deterministic PRNG shim.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the small slice of the `rand` API the workspace uses: an **object-safe**
//! [`Rng`] trait (the engine passes `&mut dyn Rng` through the chase),
//! [`SeedableRng`], and [`rngs::StdRng`] backed by xoshiro256++ seeded via
//! SplitMix64. Streams are fully deterministic per seed, which the engine
//! relies on for reproducible Monte-Carlo runs.

/// An object-safe random number generator.
///
/// All derived methods are provided in terms of [`Rng::next_u64`], so any
/// implementor stays usable as `&mut dyn Rng`.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.gen_f64() < p
    }

    /// A uniform integer in `[lo, hi]` (inclusive). Uses rejection sampling
    /// to avoid modulo bias.
    fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "gen_range_i64: empty range");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span == 1 {
            return lo;
        }
        // Largest multiple of `span` that fits in u64 range.
        let zone = u64::MAX - ((u128::from(u64::MAX) + 1) % span) as u64;
        loop {
            let x = self.next_u64();
            if x <= zone {
                return (lo as i128 + (u128::from(x) % span) as i128) as i64;
            }
        }
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index: empty range");
        self.gen_range_i64(0, n as i64 - 1) as usize
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman/Vigna),
    /// seeded through SplitMix64 so that nearby seeds yield decorrelated
    /// streams.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state is invalid for xoshiro; SplitMix64 cannot
            // produce four zero outputs in a row, but be defensive.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.3)).count();
        let p = hits as f64 / 20_000.0;
        assert!((p - 0.3).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut r = StdRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range_i64(0, 9);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(r.gen_range_i64(4, 4), 4);
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut r = StdRng::seed_from_u64(3);
        let d: &mut dyn Rng = &mut r;
        let _ = d.next_u64();
        let _ = d.gen_f64();
    }
}
