//! `gdl` — a small command-line front-end for the GDatalog engine.
//!
//! ```text
//! gdl check  <file.gdl>                  parse + validate + analyze + show Ĝ
//! gdl exact  <file.gdl> [--barany] [--depth N] [--input facts.gdl]
//! gdl sample <file.gdl> [--barany] [--runs N] [--seed S] [--steps N] [--input facts.gdl]
//! gdl tree   <file.gdl> [--depth N]      chase tree in Graphviz DOT
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use gdatalog::engine::{build_chase_tree, ChasePolicy};
use gdatalog::prelude::*;

struct Args {
    command: String,
    file: String,
    mode: SemanticsMode,
    runs: usize,
    seed: u64,
    steps: usize,
    depth: usize,
    input: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let file = argv.next().ok_or("missing program file")?;
    let mut args = Args {
        command,
        file,
        mode: SemanticsMode::Grohe,
        runs: 10_000,
        seed: 0,
        steps: 100_000,
        depth: 10_000,
        input: None,
    };
    while let Some(flag) = argv.next() {
        let mut take = |what: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--barany" => args.mode = SemanticsMode::Barany,
            "--runs" => args.runs = take("--runs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--steps" => args.steps = take("--steps")?.parse().map_err(|e| format!("{e}"))?,
            "--depth" => args.depth = take("--depth")?.parse().map_err(|e| format!("{e}"))?,
            "--input" => args.input = Some(take("--input")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let src = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let engine = Engine::from_source(&src, args.mode).map_err(|e| e.to_string())?;
    let program = engine.program();
    let extra_input = match &args.input {
        None => None,
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Some(gdatalog::lang::parse_facts(&text, &program.catalog).map_err(|e| e.to_string())?)
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    match args.command.as_str() {
        "check" => {
            let n_exist = program.rules.iter().filter(|r| r.is_existential()).count();
            let _ = writeln!(out, "semantics:        {}", program.mode);
            let _ = writeln!(out, "relations:        {}", program.catalog.len());
            let _ = writeln!(
                out,
                "rules (Datalog∃): {} ({} existential)",
                program.rules.len(),
                n_exist
            );
            let _ = writeln!(out, "initial facts:    {}", program.initial_instance.len());
            let _ = writeln!(out, "all discrete:     {}", program.all_discrete());
            let _ = writeln!(out, "weakly acyclic:   {}", program.weakly_acyclic());
            if let Some(((from_r, from_c), (to_r, to_c))) = &program.acyclicity.witness {
                let _ = writeln!(
                    out,
                    "  cycle witness: ({from_r}, {from_c}) → ({to_r}, {to_c})"
                );
            }
            let _ = writeln!(out, "\nassociated Datalog∃ program Ĝ (§3.2):");
            for line in program.render_existential_program().lines() {
                let _ = writeln!(out, "  {line}");
            }
            Ok(())
        }
        "exact" => {
            let worlds = engine
                .enumerate(
                    extra_input.as_ref(),
                    ExactConfig {
                        max_depth: args.depth,
                        ..ExactConfig::default()
                    },
                )
                .map_err(|e| e.to_string())?;
            for (text, p) in worlds.table(&program.catalog) {
                let _ = writeln!(out, "{p:.6}  {text}");
            }
            let _ = writeln!(
                out,
                "# mass {:.6}, non-termination {:.6}, truncation {:.6}",
                worlds.mass(),
                worlds.deficit().nontermination,
                worlds.deficit().truncation
            );
            Ok(())
        }
        "sample" => {
            let pdb = engine
                .sample(
                    extra_input.as_ref(),
                    &McConfig {
                        runs: args.runs,
                        seed: args.seed,
                        max_steps: args.steps,
                        threads: 4,
                        ..McConfig::default()
                    },
                )
                .map_err(|e| e.to_string())?;
            let dist = pdb.to_distribution();
            // Print the most probable worlds first (up to 20).
            let mut rows: Vec<(f64, String)> = dist
                .iter()
                .map(|(d, p)| (*p, gdatalog::data::canonical_text(d, &program.catalog)))
                .collect();
            rows.sort_by(|a, b| b.0.total_cmp(&a.0));
            for (p, text) in rows.iter().take(20) {
                let flat = if text.is_empty() {
                    "(empty)".to_string()
                } else {
                    text.trim_end().replace('\n', "  ")
                };
                let _ = writeln!(out, "{p:.6}  {flat}");
            }
            if rows.len() > 20 {
                let _ = writeln!(out, "… {} more distinct worlds", rows.len() - 20);
            }
            let _ = writeln!(
                out,
                "# runs {}, errors {}, estimated mass {:.4}",
                pdb.runs(),
                pdb.errors(),
                pdb.mass()
            );
            Ok(())
        }
        "tree" => {
            let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
            let tree = build_chase_tree(
                program,
                &program.initial_instance,
                &mut policy,
                ExactConfig {
                    max_depth: args.depth,
                    ..ExactConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            let _ = write!(out, "{}", tree.to_dot(&program.catalog));
            Ok(())
        }
        other => Err(format!(
            "unknown command `{other}` (expected check | exact | sample | tree)"
        )),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gdl: {e}");
            eprintln!(
                "usage: gdl <check|exact|sample|tree> <file.gdl> \
                 [--barany] [--runs N] [--seed S] [--steps N] [--depth N]"
            );
            ExitCode::from(2)
        }
    }
}
