//! `gdl` — a small command-line front-end for the GDatalog engine.
//!
//! ```text
//! gdl check  <file.gdl>                  parse + validate + analyze + show Ĝ
//! gdl exact  <file.gdl> [--barany] [--depth N] [--input facts.gdl] [--format json]
//! gdl sample <file.gdl> [--barany] [--runs N] [--seed S] [--steps N]
//!                       [--threads N] [--input facts.gdl] [--format json|facts]
//!                       [--out data.gdl]
//! gdl fit    <file.gdl> <data.gdl> [--barany] [--em-iters N] [--tol X]
//!                       [--runs N] [--seed S] [--steps N] [--out fitted.gdl]
//!                       [--format json]
//! gdl query  <file.gdl> <marginal|expectation|histogram|quantile|tail> <Relation>
//!                       [--agg count|sum|avg|min|max] [--col K]
//!                       [--lo X --hi Y --bins N] [--q Q] [--threshold T]
//!                       [--and "<kind>:<Rel>[:...]"]... [--given "observations"]
//!                       [--exact | --mc | --mh] [--runs N] [--seed S] [--steps N]
//!                       [--ess-target E [--max-runs N]] [--burn-in N] [--thin N]
//!                       [--threads N] [--batch N] [--input facts.gdl] [--format json]
//! gdl batch  <requests.json> [--threads N] [--format json]
//! gdl serve  <file.gdl> [--barany] [--addr HOST:PORT] [--workers N]
//!                       [--max-inflight N] [--deadline-ms MS] [--max-body-bytes N]
//! gdl loadgen <requests.json> [--addr HOST:PORT] [--connections N]
//!                       [--duration-ms MS] [--rate R] [--out report.json]
//! gdl tree   <file.gdl> [--depth N]      chase tree in Graphviz DOT
//! ```
//!
//! Every evaluating command goes through the [`Session`] API: the program
//! is compiled once, `--input` facts extend the session's extensional
//! database, and the builder picks exact enumeration or streaming
//! Monte-Carlo automatically (`--exact` / `--mc` force a backend).
//!
//! `query` answers one query per `--and` flag **plus** the positional
//! one, all folded from a **single** evaluation pass (chase once, answer
//! many) — the CLI face of `Evaluation::answer`. Specs are
//! colon-separated: `marginal:Rel`, `expectation:Rel[:agg[:col]]`,
//! `histogram:Rel:col:lo:hi:bins`, `quantile:Rel:col:q`,
//! `tail:Rel:col:threshold`.
//!
//! `query --given "<observations>"` **conditions** the query: the argument
//! takes `@observe` statements with the prefix optional — hard ground
//! facts (`"Alarm(h1)."`) and soft likelihood statements
//! (`"Normal<M, 1.0> == 2.5 :- Mu(M)."`) — and the answer is the
//! posterior (exact renormalization or likelihood-weighted Monte-Carlo).
//!
//! `batch` is the serving path (`gdatalog::serve`): the document names a
//! program (by path or inline source) and a list of independent requests
//! — the program compiles **once**, warm sessions are pooled, and
//! requests are scheduled across `--threads` workers with answers in
//! request order, bit-identical to one-at-a-time evaluation:
//!
//! ```text
//! {
//!   "program": "model.gdl",
//!   "requests": [
//!     {"kind": "marginal", "fact": "Alarm(h0)", "evidence": "City(h0, 0.3)."},
//!     {"kind": "expectation", "rel": "Alarm", "agg": "count"},
//!     {"kind": "histogram", "rel": "PHeight", "col": 1, "lo": 140, "hi": 220,
//!      "bins": 16, "backend": "mc", "runs": 20000, "seed": 7}
//!   ]
//! }
//! ```
//!
//! `sample --format facts` dumps the sampled worlds as ground-fact text,
//! one `% run k` block per run — exactly the dataset format `gdl fit`
//! ingests, so a model can be round-tripped: sample a dataset from known
//! parameters, punch `?` holes into the program, and refit.
//!
//! `fit` estimates every free-parameter hole (`Normal<?mu, ?s2>`) of a
//! program from such a dataset: holes of relations present in the data are
//! fitted in closed form (weighted MLE per family), holes of latent
//! relations by EM over the conditioned evaluation machinery
//! (`gdatalog::learn`).
//!
//! `serve` keeps the same model resident behind an HTTP/1.1 front end
//! (`gdatalog::net`): `POST /v1/query` and `POST /v1/batch` speak the
//! batch wire format, `GET /v1/stats` reports metrics, and
//! `POST /v1/shutdown` drains the server. `loadgen` drives a running
//! server with the requests of a corpus document and reports req/s and
//! exact p50/p99 latency.

use std::io::Write as _;
use std::process::ExitCode;

use gdatalog::engine::{build_chase_tree, ChasePolicy, Evaluation};
use gdatalog::net::{self, HttpServer, LoadgenConfig, NetConfig};
use gdatalog::prelude::*;
// The wire-syntax renderers are shared with the serving layer so
// `gdl query` and `gdl batch` output cannot diverge.
use gdatalog::serve::fact_text;
use gdatalog::serve::json::{escape as json_escape, Json};

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    /// `sample` only: ground-fact text in `% run k` blocks — the dataset
    /// format `gdl fit` ingests.
    Facts,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ForceBackend {
    Auto,
    Exact,
    Mc,
    Mh,
}

struct Args {
    command: String,
    file: String,
    /// `query` positionals: kind and relation name.
    query_kind: Option<String>,
    query_rel: Option<String>,
    /// `fit` positional: the dataset file.
    data: Option<String>,
    /// `fit --em-iters`: EM iteration cap for latent holes.
    em_iters: usize,
    /// `fit --tol`: relative log-likelihood convergence tolerance.
    tol: f64,
    mode: SemanticsMode,
    runs: usize,
    seed: u64,
    steps: usize,
    depth: usize,
    threads: usize,
    /// Whether `--threads` was given explicitly (the flag then overrides a
    /// batch document's own `threads` member, including `--threads 1`).
    threads_set: bool,
    /// Every flag seen on the command line, in order — lets subcommands
    /// reject flags they would otherwise silently ignore.
    seen_flags: Vec<String>,
    input: Option<String>,
    given: Option<String>,
    format: Format,
    force: ForceBackend,
    agg: AggFun,
    col: Option<usize>,
    lo: Option<f64>,
    hi: Option<f64>,
    bins: usize,
    q: Option<f64>,
    threshold: Option<f64>,
    /// Additional queries (`--and <spec>`, repeatable) answered in the
    /// same backend pass as the positional query.
    and: Vec<String>,
    /// `query --ess-target`: grow the Monte-Carlo run count until the
    /// conditioned pass reaches this effective sample size.
    ess_target: Option<f64>,
    /// `query --max-runs`: run-count cap for `--ess-target`.
    max_runs: Option<usize>,
    /// `--batch`: Monte-Carlo lane-batch size (bit-identical at any
    /// value; `1` disables the batched executor).
    batch: Option<usize>,
    /// `query --burn-in`: MH burn-in steps (with `--mh`).
    burn_in: Option<usize>,
    /// `query --thin`: MH thinning interval (with `--mh`).
    thin: Option<usize>,
    /// `serve`/`loadgen`: address to bind / target.
    addr: String,
    /// `serve`: worker threads (`None` = one per core).
    workers: Option<usize>,
    /// `serve`: admission cap (`None` = the net-layer default).
    max_inflight: Option<usize>,
    /// `serve`: body cap in bytes (`None` = the net-layer default).
    max_body_bytes: Option<usize>,
    /// `serve`: per-request evaluation budget in milliseconds.
    deadline_ms: Option<u64>,
    /// `loadgen`: concurrent keep-alive connections.
    connections: usize,
    /// `loadgen`: run length in milliseconds.
    duration_ms: u64,
    /// `loadgen`: open-loop target rate (requests/second, all
    /// connections together); `None` = closed-loop.
    rate: Option<f64>,
    /// `loadgen`: also write the JSON report to this path.
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or("missing command")?;
    let file = argv.next().ok_or("missing program file")?;
    let mut args = Args {
        command,
        file,
        query_kind: None,
        query_rel: None,
        data: None,
        em_iters: 50,
        tol: 1e-6,
        mode: SemanticsMode::Grohe,
        runs: 10_000,
        seed: 0,
        steps: 100_000,
        depth: 10_000,
        threads: 1,
        threads_set: false,
        seen_flags: Vec::new(),
        input: None,
        given: None,
        format: Format::Text,
        force: ForceBackend::Auto,
        agg: AggFun::Count,
        col: None,
        lo: None,
        hi: None,
        bins: 20,
        q: None,
        threshold: None,
        and: Vec::new(),
        ess_target: None,
        max_runs: None,
        batch: None,
        burn_in: None,
        thin: None,
        addr: "127.0.0.1:7171".to_string(),
        workers: None,
        max_inflight: None,
        max_body_bytes: None,
        deadline_ms: None,
        connections: 4,
        duration_ms: 3_000,
        rate: None,
        out: None,
    };
    if args.command == "query" {
        args.query_kind = Some(argv.next().ok_or("query needs a kind")?);
        args.query_rel = Some(argv.next().ok_or("query needs a relation")?);
    }
    if args.command == "fit" {
        args.data = Some(argv.next().ok_or("fit needs a dataset file")?);
    }
    while let Some(flag) = argv.next() {
        args.seen_flags.push(flag.clone());
        let mut take = |what: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{what} needs a value"))
        };
        let num = |what: &str, v: Result<String, String>| -> Result<f64, String> {
            v?.parse().map_err(|e| format!("{what}: {e}"))
        };
        match flag.as_str() {
            "--barany" => args.mode = SemanticsMode::Barany,
            "--runs" => args.runs = take("--runs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = take("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--steps" => args.steps = take("--steps")?.parse().map_err(|e| format!("{e}"))?,
            "--depth" => args.depth = take("--depth")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                args.threads = take("--threads")?.parse().map_err(|e| format!("{e}"))?;
                if args.threads == 0 {
                    return Err(
                        "--threads 0 would mean no workers; pass at least 1 (or omit \
                         the flag for the default)"
                            .to_string(),
                    );
                }
                args.threads_set = true;
            }
            "--input" => args.input = Some(take("--input")?),
            "--given" => args.given = Some(take("--given")?),
            "--format" => {
                args.format = match take("--format")?.as_str() {
                    "json" => Format::Json,
                    "text" => Format::Text,
                    "facts" => Format::Facts,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--exact" => args.force = ForceBackend::Exact,
            "--mc" => args.force = ForceBackend::Mc,
            "--mh" => args.force = ForceBackend::Mh,
            "--ess-target" => args.ess_target = Some(num("--ess-target", take("--ess-target"))?),
            "--max-runs" => {
                args.max_runs = Some(take("--max-runs")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--batch" => {
                let batch: usize = take("--batch")?.parse().map_err(|e| format!("{e}"))?;
                if batch == 0 {
                    return Err(
                        "--batch 0 would schedule empty lane batches; pass at least 1 \
                         (1 disables batching)"
                            .to_string(),
                    );
                }
                args.batch = Some(batch);
            }
            "--burn-in" => {
                args.burn_in = Some(take("--burn-in")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--thin" => args.thin = Some(take("--thin")?.parse().map_err(|e| format!("{e}"))?),
            "--em-iters" => {
                args.em_iters = take("--em-iters")?.parse().map_err(|e| format!("{e}"))?;
                if args.em_iters == 0 {
                    return Err("--em-iters must be at least 1".to_string());
                }
            }
            "--tol" => {
                let tol = num("--tol", take("--tol"))?;
                if !tol.is_finite() || tol <= 0.0 {
                    return Err(format!("--tol must be a positive number, got {tol}"));
                }
                args.tol = tol;
            }
            "--agg" => {
                args.agg = match take("--agg")?.as_str() {
                    "count" => AggFun::Count,
                    "sum" => AggFun::Sum,
                    "avg" => AggFun::Avg,
                    "min" => AggFun::Min,
                    "max" => AggFun::Max,
                    other => return Err(format!("unknown aggregate `{other}`")),
                }
            }
            "--col" => args.col = Some(take("--col")?.parse().map_err(|e| format!("{e}"))?),
            "--lo" => args.lo = Some(num("--lo", take("--lo"))?),
            "--hi" => args.hi = Some(num("--hi", take("--hi"))?),
            "--bins" => args.bins = take("--bins")?.parse().map_err(|e| format!("{e}"))?,
            "--q" => args.q = Some(num("--q", take("--q"))?),
            "--threshold" => args.threshold = Some(num("--threshold", take("--threshold"))?),
            "--and" => args.and.push(take("--and")?),
            "--addr" => args.addr = take("--addr")?,
            "--workers" => {
                let workers: usize = take("--workers")?.parse().map_err(|e| format!("{e}"))?;
                if workers == 0 {
                    return Err(
                        "--workers 0 would mean no serving threads; pass at least 1 \
                         (or omit the flag for one per core)"
                            .to_string(),
                    );
                }
                args.workers = Some(workers);
            }
            "--max-inflight" => {
                args.max_inflight = Some(
                    take("--max-inflight")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--max-body-bytes" => {
                args.max_body_bytes = Some(
                    take("--max-body-bytes")?
                        .parse()
                        .map_err(|e| format!("{e}"))?,
                )
            }
            "--deadline-ms" => {
                args.deadline_ms = Some(take("--deadline-ms")?.parse().map_err(|e| format!("{e}"))?)
            }
            "--connections" => {
                args.connections = take("--connections")?.parse().map_err(|e| format!("{e}"))?;
                if args.connections == 0 {
                    return Err("--connections must be at least 1".to_string());
                }
            }
            "--duration-ms" => {
                args.duration_ms = take("--duration-ms")?.parse().map_err(|e| format!("{e}"))?
            }
            "--rate" => {
                let rate: f64 = take("--rate")?.parse().map_err(|e| format!("{e}"))?;
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(format!("--rate must be a positive number, got {rate}"));
                }
                args.rate = Some(rate);
            }
            "--out" => args.out = Some(take("--out")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn world_text(world: &Instance, catalog: &Catalog) -> String {
    let text = gdatalog::data::canonical_text(world, catalog);
    if text.is_empty() {
        "(empty)".to_string()
    } else {
        text.trim_end().replace('\n', "  ")
    }
}

/// Builds the session and applies `--input` facts.
fn make_session(args: &Args) -> Result<Session, String> {
    let src = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let mut session = Session::from_source(&src, args.mode).map_err(|e| e.to_string())?;
    if let Some(path) = &args.input {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        session
            .insert_facts_text(&text)
            .map_err(|e| e.to_string())?;
    }
    Ok(session)
}

/// Configures an evaluation from the CLI flags: the backend is resolved
/// first (auto picks Monte-Carlo for continuous programs), then the budget
/// flag that matches it applies — `--steps` for sampling backends,
/// `--depth` for exact enumeration. `--ess-target` switches the
/// Monte-Carlo path to adaptive run control; `--mh` selects the
/// Metropolis-Hastings chain (with `--burn-in` / `--thin`).
fn configure<'a>(session: &'a Session, args: &Args) -> Result<Evaluation<'a>, String> {
    let sampling = match args.force {
        ForceBackend::Mc | ForceBackend::Mh => true,
        ForceBackend::Exact => false,
        ForceBackend::Auto => !session.program().all_discrete(),
    };
    let mut eval = session
        .eval()
        .seed(args.seed)
        .threads(args.threads)
        .max_depth(if sampling { args.steps } else { args.depth });
    if let Some(batch) = args.batch {
        eval = eval.batch(batch);
    }
    if let Some(given) = &args.given {
        eval = eval.given(given.clone());
    }
    if args.force == ForceBackend::Mh {
        if args.ess_target.is_some() {
            return Err(
                "--ess-target applies to the Monte-Carlo backend; it cannot be \
                 combined with --mh (the MH stream is already normalized)"
                    .to_string(),
            );
        }
        let mut eval = eval.mh(args.runs);
        if let Some(steps) = args.burn_in {
            eval = eval.burn_in(steps);
        }
        if let Some(every) = args.thin {
            eval = eval.thin(every);
        }
        return Ok(eval);
    }
    if args.burn_in.is_some() || args.thin.is_some() {
        return Err("--burn-in/--thin configure the MH chain; pass --mh".to_string());
    }
    if let Some(target) = args.ess_target {
        if args.force == ForceBackend::Exact {
            return Err("--ess-target applies to Monte-Carlo sampling, not --exact".to_string());
        }
        let mut target = EssTarget::new(target);
        if let Some(cap) = args.max_runs {
            target = target.max_runs(cap);
        }
        return Ok(eval.sample_until(target));
    }
    if let Some(cap) = args.max_runs {
        return Err(format!(
            "--max-runs {cap} caps --ess-target's adaptive run growth; pass --ess-target"
        ));
    }
    Ok(if sampling {
        eval.sample(args.runs)
    } else if args.force == ForceBackend::Exact {
        eval.exact()
    } else {
        eval
    })
}

/// Runs `gdl batch <requests.json>`: compile once, pool sessions, answer
/// the batch in request order.
fn run_batch(args: &Args) -> Result<(), String> {
    // Evaluation configuration is per-request in the document; accepting
    // these flags here and then ignoring them would silently change what
    // the user asked for.
    const NOT_FOR_BATCH: &[&str] = &[
        "--runs",
        "--seed",
        "--steps",
        "--depth",
        "--input",
        "--given",
        "--exact",
        "--mc",
        "--mh",
        "--ess-target",
        "--max-runs",
        "--batch",
        "--burn-in",
        "--thin",
        "--agg",
        "--col",
        "--lo",
        "--hi",
        "--bins",
        "--q",
        "--threshold",
        "--and",
    ];
    if let Some(flag) = args
        .seen_flags
        .iter()
        .find(|f| NOT_FOR_BATCH.contains(&f.as_str()))
    {
        return Err(format!(
            "{flag} does not apply to `batch`; set the per-request members \
             (backend/runs/seed/max_depth/evidence) in the document instead"
        ));
    }
    let doc_text = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let doc = Json::parse(&doc_text).map_err(|e| format!("{}: {e}", args.file))?;
    // The --barany flag wins; otherwise the document's "mode" member
    // (which must be a string when present — no silent default).
    let mode = if args.mode == SemanticsMode::Barany {
        SemanticsMode::Barany
    } else {
        match doc.get("mode") {
            None => SemanticsMode::Grohe,
            Some(m) => match m.as_str() {
                Some("grohe") => SemanticsMode::Grohe,
                Some("barany") => SemanticsMode::Barany,
                Some(other) => return Err(format!("unknown mode `{other}`")),
                None => return Err(format!("`mode` must be a string, got {}", m.render())),
            },
        }
    };
    let src = match (
        doc.get("source").and_then(Json::as_str),
        doc.get("program").and_then(Json::as_str),
    ) {
        (Some(src), _) => src.to_string(),
        (None, Some(path)) => {
            // A relative program path resolves against the batch document
            // (as documented); absolute paths are used as-is.
            let direct = std::path::Path::new(path);
            let resolved = if direct.is_absolute() {
                direct.to_path_buf()
            } else {
                std::path::Path::new(&args.file)
                    .parent()
                    .map(|dir| dir.join(path))
                    .unwrap_or_else(|| direct.to_path_buf())
            };
            std::fs::read_to_string(&resolved)
                .map_err(|e| format!("cannot read {}: {e}", resolved.display()))?
        }
        (None, None) => {
            return Err("batch document needs a `program` path or inline `source`".to_string())
        }
    };
    let requests: Vec<Request> = doc
        .get("requests")
        .and_then(Json::as_array)
        .ok_or("batch document needs a `requests` array")?
        .iter()
        .map(|v| Request::from_json(v).map_err(|e| e.to_string()))
        .collect::<Result<_, String>>()?;
    // An explicit --threads (even `--threads 1`) wins over the document's
    // own "threads" member; a malformed member is an error, not a silent
    // fall-back to sequential execution.
    let threads = if args.threads_set {
        args.threads
    } else {
        match doc.get("threads") {
            None => 1,
            Some(n) => n.as_usize().ok_or_else(|| {
                format!(
                    "`threads` must be a non-negative whole number, got {}",
                    n.render()
                )
            })?,
        }
    };
    if threads == 0 {
        return Err(
            "the document's `threads` member is 0, which would mean no workers; \
             use 1 or more (or drop the member for sequential execution)"
                .to_string(),
        );
    }
    let server = Server::from_source(&src, mode)
        .map_err(|e| e.to_string())?
        .threads(threads);
    let answers = server.batch(&requests);

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let rendered: Vec<Json> = answers
        .iter()
        .map(|answer| match answer {
            Ok(response) => response.to_json(),
            Err(e) => Json::Obj(vec![("error".into(), Json::Str(e.to_string()))]),
        })
        .collect();
    match args.format {
        Format::Facts => unreachable!("rejected before dispatch"),
        Format::Json => {
            let _ = writeln!(
                out,
                "{}",
                Json::Obj(vec![("results".into(), Json::Arr(rendered))]).render()
            );
        }
        Format::Text => {
            for (i, row) in rendered.iter().enumerate() {
                let _ = writeln!(out, "[{i}] {}", row.render());
            }
            let _ = writeln!(
                out,
                "# {} request(s), {} worker(s), {} pooled session(s)",
                requests.len(),
                threads,
                server.pool().created()
            );
        }
    }
    Ok(())
}

/// Runs `gdl serve <model.gdl>`: compile once, then serve it over HTTP
/// until a client posts `/v1/shutdown`.
fn run_serve(args: &Args) -> Result<(), String> {
    let src = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let mut config = NetConfig::default();
    if let Some(workers) = args.workers {
        config.workers = workers;
    }
    if let Some(max_inflight) = args.max_inflight {
        config.max_inflight = max_inflight;
    }
    if let Some(max_body_bytes) = args.max_body_bytes {
        config.max_body_bytes = max_body_bytes;
    }
    config.deadline = args.deadline_ms.map(std::time::Duration::from_millis);
    let server =
        HttpServer::start_source(&src, args.mode, &args.addr, config).map_err(|e| e.to_string())?;
    eprintln!(
        "gdl serve: listening on http://{} ({} worker(s)); POST /v1/shutdown to stop",
        server.addr(),
        server.workers()
    );
    server.join();
    eprintln!("gdl serve: drained, bye");
    Ok(())
}

/// Runs `gdl loadgen <requests.json>` against a live server and prints
/// (and optionally writes) the JSON report.
fn run_loadgen(args: &Args) -> Result<(), String> {
    let doc = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let bodies = net::bodies_from_json(&doc).map_err(|e| e.to_string())?;
    let report = net::run_loadgen(
        &bodies,
        &LoadgenConfig {
            addr: args.addr.clone(),
            connections: args.connections,
            duration: std::time::Duration::from_millis(args.duration_ms),
            rate: args.rate,
            ..LoadgenConfig::default()
        },
    );
    let rendered = report.to_json();
    println!("{rendered}");
    if let Some(path) = &args.out {
        std::fs::write(path, format!("{rendered}\n"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if report.sent == report.io_errors {
        return Err(format!(
            "no request survived the socket — is a server listening on {}?",
            args.addr
        ));
    }
    Ok(())
}

/// Runs `gdl fit <model.gdl> <data.gdl>`: estimate every `?` hole of the
/// program from the dataset and print (or write) the fitted program plus
/// its [`gdatalog::learn::FitReport`].
fn run_fit(args: &Args) -> Result<(), String> {
    // Evaluation-shape flags that have no meaning during fitting are
    // rejected, not silently dropped.
    const NOT_FOR_FIT: &[&str] = &[
        "--given",
        "--input",
        "--exact",
        "--mc",
        "--mh",
        "--ess-target",
        "--max-runs",
        "--batch",
        "--burn-in",
        "--thin",
        "--depth",
        "--threads",
    ];
    if let Some(flag) = args
        .seen_flags
        .iter()
        .find(|f| NOT_FOR_FIT.contains(&f.as_str()))
    {
        return Err(format!(
            "{flag} does not apply to `fit`; the E-step is configured by \
             --runs/--seed/--steps and the EM loop by --em-iters/--tol"
        ));
    }
    let src = std::fs::read_to_string(&args.file)
        .map_err(|e| format!("cannot read {}: {e}", args.file))?;
    let data_path = args.data.as_deref().expect("parsed");
    let data =
        std::fs::read_to_string(data_path).map_err(|e| format!("cannot read {data_path}: {e}"))?;
    let opts = gdatalog::learn::FitOptions {
        mode: args.mode,
        em_iters: args.em_iters,
        tol: args.tol,
        seed: args.seed,
        runs: args.runs,
        max_depth: Some(args.steps),
    };
    let fitted = gdatalog::learn::fit_program(&src, &data, &opts).map_err(|e| e.to_string())?;
    let report = &fitted.report;

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    match args.format {
        Format::Json => {
            let _ = writeln!(out, "{}", report.to_json());
        }
        Format::Facts => unreachable!("rejected before dispatch"),
        Format::Text => {
            for e in &report.estimates {
                let gof = match e.goodness_of_fit {
                    Some(g) => format!("{g:.3}"),
                    None => "-".to_string(),
                };
                let _ = writeln!(
                    out,
                    "{:<24} = {:<12} ({} of {}, n_obs {:.1}, gof {gof}{})",
                    e.label,
                    e.value.to_string(),
                    e.dist,
                    e.rel,
                    e.n_obs,
                    if e.latent { ", latent" } else { "" },
                );
            }
            let _ = writeln!(
                out,
                "# {} block(s), {} fact(s); log-likelihood {:.4}; {} iteration(s), {}{}",
                report.n_blocks,
                report.n_facts,
                report.final_log_likelihood(),
                report.iterations,
                if report.em { "EM" } else { "closed form" },
                if report.converged {
                    ", converged"
                } else {
                    ", NOT converged"
                },
            );
            if args.out.is_none() {
                let _ = writeln!(out, "\nfitted program:");
                for line in fitted.source.lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
        }
    }
    if let Some(path) = &args.out {
        std::fs::write(path, &fitted.source).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("gdl fit: wrote fitted program to {path}");
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    // `fit`-only flags elsewhere, and formats/outputs a command does not
    // produce, are errors, not silent drops (the `batch` rule).
    if args.command != "fit" {
        if let Some(flag) = args
            .seen_flags
            .iter()
            .find(|f| matches!(f.as_str(), "--em-iters" | "--tol"))
        {
            return Err(format!(
                "{flag} configures parameter estimation; it only applies to `fit`"
            ));
        }
    }
    if args.format == Format::Facts && !matches!(args.command.as_str(), "sample") {
        return Err(format!(
            "--format facts dumps sampled worlds as dataset text; it only applies to \
             `sample` (got `{}`)",
            args.command
        ));
    }
    if args.out.is_some() && !matches!(args.command.as_str(), "loadgen" | "sample" | "fit") {
        return Err(format!(
            "--out does not apply to `{}`; it writes `sample` dumps, `fit` results, \
             and `loadgen` reports",
            args.command
        ));
    }
    if args.command == "batch" {
        return run_batch(&args);
    }
    if args.command == "serve" {
        return run_serve(&args);
    }
    if args.command == "loadgen" {
        return run_loadgen(&args);
    }
    if args.command == "fit" {
        return run_fit(&args);
    }
    let session = make_session(&args)?;
    let program = session.program();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    // `--given` conditions `query` and `exact`; accepting it elsewhere and
    // then ignoring it would silently answer the prior as if it were the
    // posterior (the same silent-flag-drop `batch` guards against).
    if args.given.is_some() && !matches!(args.command.as_str(), "query" | "exact") {
        return Err(format!(
            "--given does not apply to `{}`; use `query … --given` (posterior \
             statistics) or `exact --given` (renormalized posterior world table)",
            args.command
        ));
    }

    match args.command.as_str() {
        "check" => {
            let n_exist = program.rules.iter().filter(|r| r.is_existential()).count();
            let _ = writeln!(out, "semantics:        {}", program.mode);
            let _ = writeln!(out, "relations:        {}", program.catalog.len());
            let _ = writeln!(
                out,
                "rules (Datalog∃): {} ({} existential)",
                program.rules.len(),
                n_exist
            );
            let _ = writeln!(out, "initial facts:    {}", program.initial_instance.len());
            let _ = writeln!(out, "all discrete:     {}", program.all_discrete());
            let _ = writeln!(out, "weakly acyclic:   {}", program.weakly_acyclic());
            if let Some(((from_r, from_c), (to_r, to_c))) = &program.acyclicity.witness {
                let _ = writeln!(
                    out,
                    "  cycle witness: ({from_r}, {from_c}) → ({to_r}, {to_c})"
                );
            }
            let _ = writeln!(out, "\nassociated Datalog∃ program Ĝ (§3.2):");
            for line in program.render_existential_program().lines() {
                let _ = writeln!(out, "  {line}");
            }
            Ok(())
        }
        "exact" => {
            let mut eval = session.eval().exact().max_depth(args.depth);
            if let Some(given) = &args.given {
                eval = eval.given(given.clone());
            }
            let worlds = eval.worlds().map_err(|e| e.to_string())?;
            match args.format {
                Format::Facts => unreachable!("rejected before dispatch"),
                Format::Text => {
                    for (text, p) in worlds.table(&program.catalog) {
                        let _ = writeln!(out, "{p:.6}  {text}");
                    }
                    let _ = writeln!(
                        out,
                        "# mass {:.6}, non-termination {:.6}, truncation {:.6}",
                        worlds.mass(),
                        worlds.deficit().nontermination,
                        worlds.deficit().truncation
                    );
                }
                Format::Json => {
                    let rows: Vec<String> = worlds
                        .table(&program.catalog)
                        .into_iter()
                        .map(|(text, p)| {
                            format!("{{\"p\": {p}, \"world\": \"{}\"}}", json_escape(&text))
                        })
                        .collect();
                    let _ = writeln!(
                        out,
                        "{{\"mass\": {}, \"nontermination\": {}, \"truncation\": {}, \
                         \"worlds\": [{}]}}",
                        worlds.mass(),
                        worlds.deficit().nontermination,
                        worlds.deficit().truncation,
                        rows.join(", ")
                    );
                }
            }
            Ok(())
        }
        "sample" => {
            let mut eval = session
                .eval()
                .sample(args.runs)
                .seed(args.seed)
                .threads(args.threads.max(1))
                .max_depth(args.steps);
            if let Some(batch) = args.batch {
                eval = eval.batch(batch);
            }
            let pdb = eval.pdb().map_err(|e| e.to_string())?;
            if args.format == Format::Facts {
                // The dataset dump `gdl fit` ingests: one `% run k` block
                // of canonical ground-fact text per sampled world.
                let mut dump = String::new();
                for (k, world) in pdb.samples().iter().enumerate() {
                    dump.push_str(&format!("% run {k}\n"));
                    dump.push_str(&gdatalog::data::canonical_text(world, &program.catalog));
                }
                match &args.out {
                    Some(path) => std::fs::write(path, &dump)
                        .map_err(|e| format!("cannot write {path}: {e}"))?,
                    None => {
                        let _ = write!(out, "{dump}");
                    }
                }
                return Ok(());
            }
            if args.out.is_some() {
                return Err(
                    "--out on `sample` writes the facts dump; pass --format facts".to_string(),
                );
            }
            let dist = pdb.to_distribution();
            let mut rows: Vec<(f64, String)> = dist
                .iter()
                .map(|(d, p)| (*p, world_text(d, &program.catalog)))
                .collect();
            rows.sort_by(|a, b| b.0.total_cmp(&a.0));
            match args.format {
                Format::Facts => unreachable!("handled above"),
                Format::Text => {
                    for (p, text) in rows.iter().take(20) {
                        let _ = writeln!(out, "{p:.6}  {text}");
                    }
                    if rows.len() > 20 {
                        let _ = writeln!(out, "… {} more distinct worlds", rows.len() - 20);
                    }
                    let _ = writeln!(
                        out,
                        "# runs {}, errors {}, estimated mass {:.4}",
                        pdb.runs(),
                        pdb.errors(),
                        pdb.mass()
                    );
                }
                Format::Json => {
                    let worlds: Vec<String> = rows
                        .iter()
                        .map(|(p, text)| {
                            format!("{{\"p\": {p}, \"world\": \"{}\"}}", json_escape(text))
                        })
                        .collect();
                    let _ = writeln!(
                        out,
                        "{{\"runs\": {}, \"errors\": {}, \"mass\": {}, \"worlds\": [{}]}}",
                        pdb.runs(),
                        pdb.errors(),
                        pdb.mass(),
                        worlds.join(", ")
                    );
                }
            }
            Ok(())
        }
        "query" => run_query(&args, &session, &mut out),
        "tree" => {
            let mut policy = ChasePolicy::new(PolicyKind::Canonical, &[]);
            let tree = build_chase_tree(
                program,
                &program.initial_instance,
                &mut policy,
                ExactConfig {
                    max_depth: args.depth,
                    ..ExactConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            let _ = write!(out, "{}", tree.to_dot(&program.catalog));
            Ok(())
        }
        other => Err(format!(
            "unknown command `{other}` (expected check | exact | sample | query | fit | \
             batch | serve | loadgen | tree)"
        )),
    }
}

/// Builds the primary query of `gdl query <kind> <Relation>` from the
/// positionals and their flags.
fn primary_query(args: &Args, session: &Session) -> Result<QueryIr, String> {
    let program = session.program();
    let rel_name = args.query_rel.as_deref().expect("parsed");
    let rel = program
        .catalog
        .require(rel_name)
        .map_err(|e| format!("{e}"))?;
    let arity = program.catalog.decl(rel).arity();
    let default_last_col = |col: Option<usize>| -> Result<usize, String> {
        let col = col.unwrap_or(arity.saturating_sub(1));
        if col >= arity {
            return Err(format!(
                "--col {col} out of range for {rel_name} (arity {arity})"
            ));
        }
        Ok(col)
    };
    match args.query_kind.as_deref().expect("parsed") {
        // The CLI's `marginal` has always meant all-fact marginals of a
        // relation; `marginals` (the wire-format name, and the label the
        // JSON output carries) is accepted as an alias.
        "marginal" | "marginals" => Ok(QueryIr::Marginals { rel }),
        "expectation" => {
            let query = Query::Rel(rel);
            let query = match args.col {
                // Aggregate a specific column by projecting it to the end.
                Some(col) if col < arity => query.project(vec![col]),
                Some(col) => {
                    return Err(format!(
                        "--col {col} out of range for {rel_name} (arity {arity})"
                    ))
                }
                None => query,
            };
            Ok(QueryIr::Expectation {
                query,
                agg: args.agg,
            })
        }
        "histogram" => {
            let col = default_last_col(args.col)?;
            let (lo, hi) = match (args.lo, args.hi) {
                (Some(lo), Some(hi)) => (lo, hi),
                _ => return Err("histogram needs --lo and --hi".to_string()),
            };
            if !lo.is_finite() || !hi.is_finite() || lo >= hi || args.bins == 0 {
                return Err(format!(
                    "invalid histogram spec: need finite --lo < --hi and --bins > 0 \
                     (got lo {lo}, hi {hi}, bins {})",
                    args.bins
                ));
            }
            Ok(QueryIr::Histogram {
                rel,
                col,
                lo,
                hi,
                bins: args.bins,
            })
        }
        "quantile" => {
            let col = default_last_col(args.col)?;
            let q = args.q.ok_or("quantile needs --q (in [0, 1])")?;
            if !(0.0..=1.0).contains(&q) {
                return Err(format!("--q must be in [0, 1], got {q}"));
            }
            Ok(QueryIr::Quantile { rel, col, q })
        }
        "tail" => {
            let col = default_last_col(args.col)?;
            let threshold = args.threshold.ok_or("tail needs --threshold")?;
            if threshold.is_nan() {
                return Err("--threshold must not be NaN".to_string());
            }
            Ok(QueryIr::Tail {
                rel,
                col,
                threshold,
            })
        }
        other => Err(format!(
            "unknown query kind `{other}` (expected marginal | expectation | histogram | \
             quantile | tail)"
        )),
    }
}

/// Parses one `--and` spec into a query. The mini-grammar is
/// colon-separated: `marginal:Rel`, `expectation:Rel[:agg[:col]]`,
/// `histogram:Rel:col:lo:hi:bins`, `quantile:Rel:col:q`,
/// `tail:Rel:col:threshold`.
fn parse_and_spec(spec: &str, session: &Session) -> Result<QueryIr, String> {
    let program = session.program();
    let parts: Vec<&str> = spec.split(':').collect();
    let bad = |msg: &str| format!("--and `{spec}`: {msg}");
    let resolve = |name: &str| {
        program
            .catalog
            .require(name)
            .map_err(|e| bad(&format!("{e}")))
    };
    let check_col = |rel: RelId, col: usize| -> Result<usize, String> {
        let arity = program.catalog.decl(rel).arity();
        if col >= arity {
            return Err(bad(&format!("column {col} out of range (arity {arity})")));
        }
        Ok(col)
    };
    let num = |what: &str, v: &str| -> Result<f64, String> {
        v.parse().map_err(|e| bad(&format!("{what}: {e}")))
    };
    let int = |what: &str, v: &str| -> Result<usize, String> {
        v.parse().map_err(|e| bad(&format!("{what}: {e}")))
    };
    match parts.as_slice() {
        ["marginal" | "marginals", rel] => Ok(QueryIr::Marginals { rel: resolve(rel)? }),
        ["expectation", rel] => Ok(QueryIr::Expectation {
            query: Query::Rel(resolve(rel)?),
            agg: AggFun::Count,
        }),
        ["expectation", rel, agg] | ["expectation", rel, agg, _] => {
            let rel = resolve(rel)?;
            let agg = match *agg {
                "count" => AggFun::Count,
                "sum" => AggFun::Sum,
                "avg" => AggFun::Avg,
                "min" => AggFun::Min,
                "max" => AggFun::Max,
                other => return Err(bad(&format!("unknown aggregate `{other}`"))),
            };
            let query = Query::Rel(rel);
            let query = match parts.get(3) {
                Some(col) => query.project(vec![check_col(rel, int("col", col)?)?]),
                None => query,
            };
            Ok(QueryIr::Expectation { query, agg })
        }
        ["histogram", rel, col, lo, hi, bins] => {
            let rel = resolve(rel)?;
            let (lo, hi) = (num("lo", lo)?, num("hi", hi)?);
            let bins = int("bins", bins)?;
            if !lo.is_finite() || !hi.is_finite() || lo >= hi || bins == 0 {
                return Err(bad("need finite lo < hi and bins > 0"));
            }
            Ok(QueryIr::Histogram {
                rel,
                col: check_col(rel, int("col", col)?)?,
                lo,
                hi,
                bins,
            })
        }
        ["quantile", rel, col, q] => {
            let rel = resolve(rel)?;
            let q = num("q", q)?;
            if !(0.0..=1.0).contains(&q) {
                return Err(bad(&format!("q must be in [0, 1], got {q}")));
            }
            Ok(QueryIr::Quantile {
                rel,
                col: check_col(rel, int("col", col)?)?,
                q,
            })
        }
        ["tail", rel, col, threshold] => {
            let rel = resolve(rel)?;
            let threshold = num("threshold", threshold)?;
            if threshold.is_nan() {
                return Err(bad("threshold must not be NaN"));
            }
            Ok(QueryIr::Tail {
                rel,
                col: check_col(rel, int("col", col)?)?,
                threshold,
            })
        }
        _ => Err(bad(
            "expected marginal:Rel | expectation:Rel[:agg[:col]] | \
             histogram:Rel:col:lo:hi:bins | quantile:Rel:col:q | tail:Rel:col:threshold",
        )),
    }
}

/// Renders one answer as the flat JSON object `gdl query` emits (shared
/// shapes with the serving layer's wire format where they overlap).
fn answer_json(answer: &Answer, catalog: &Catalog) -> Json {
    match answer {
        Answer::Marginal(p) => Json::Obj(vec![("p".into(), Json::Num(*p))]),
        Answer::Probability(p) => Json::Obj(vec![("p".into(), Json::Num(*p))]),
        Answer::Marginals(rows) => Json::Obj(vec![(
            "marginals".into(),
            Json::Arr(
                rows.iter()
                    .map(|(fact, p)| {
                        Json::Obj(vec![
                            ("fact".into(), Json::Str(fact_text(fact, catalog))),
                            ("p".into(), Json::Num(*p)),
                        ])
                    })
                    .collect(),
            ),
        )]),
        Answer::Expectation(None) => Json::Obj(vec![("empty".into(), Json::Bool(true))]),
        Answer::Expectation(Some(m)) => Json::Obj(vec![
            ("mean".into(), Json::Num(m.mean)),
            ("variance".into(), Json::Num(m.variance)),
            ("mass".into(), Json::Num(m.mass)),
        ]),
        Answer::Histogram(hist) => Json::Obj(vec![
            ("lo".into(), Json::Num(hist.lo)),
            ("hi".into(), Json::Num(hist.hi)),
            ("underflow".into(), Json::Num(hist.underflow)),
            ("overflow".into(), Json::Num(hist.overflow)),
            ("mass".into(), Json::Num(hist.mass)),
            (
                "bins".into(),
                Json::Arr(
                    hist.bins
                        .iter()
                        .enumerate()
                        .map(|(i, c)| {
                            Json::Obj(vec![
                                ("center".into(), Json::Num(hist.bin_center(i))),
                                ("count".into(), Json::Num(*c)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Answer::Quantile(None) => Json::Obj(vec![("empty".into(), Json::Bool(true))]),
        Answer::Quantile(Some(v)) => Json::Obj(vec![("value".into(), Json::Num(*v))]),
        Answer::Tail(p) => Json::Obj(vec![("p".into(), Json::Num(*p))]),
    }
}

/// Renders one answer as the text lines `gdl query` prints. Total: an
/// empty expectation/quantile prints an explicit `empty` line (matching
/// the `{"empty": true}` JSON shape) instead of erroring mid-stream and
/// discarding the remaining answers of a multi-query invocation.
fn write_answer_text(out: &mut impl std::io::Write, answer: &Answer, catalog: &Catalog) {
    match answer {
        Answer::Marginal(p) | Answer::Probability(p) | Answer::Tail(p) => {
            let _ = writeln!(out, "{p:.6}");
        }
        Answer::Marginals(rows) => {
            for (fact, p) in rows {
                let _ = writeln!(out, "{p:.6}  {}", fact_text(fact, catalog));
            }
        }
        Answer::Expectation(None) => {
            let _ = writeln!(out, "empty (no world mass observed)");
        }
        Answer::Expectation(Some(m)) => {
            let _ = writeln!(
                out,
                "mean {:.6}  variance {:.6}  mass {:.6}",
                m.mean, m.variance, m.mass
            );
        }
        Answer::Histogram(hist) => {
            for (i, count) in hist.bins.iter().enumerate() {
                let _ = writeln!(out, "{:>12.4}  {count:.6}", hist.bin_center(i));
            }
            let _ = writeln!(
                out,
                "# underflow {:.6}, overflow {:.6}, mass {:.6}",
                hist.underflow, hist.overflow, hist.mass
            );
        }
        Answer::Quantile(None) => {
            let _ = writeln!(out, "empty (no value mass observed)");
        }
        Answer::Quantile(Some(v)) => {
            let _ = writeln!(out, "{v:.6}");
        }
    }
}

/// Runs `gdl query`: the positional query plus every `--and` query,
/// answered together in **one** backend pass over the session.
fn run_query(args: &Args, session: &Session, out: &mut impl std::io::Write) -> Result<(), String> {
    let program = session.program();
    let mut queries = QuerySet::new();
    queries.push(primary_query(args, session)?);
    for spec in &args.and {
        queries.push(parse_and_spec(spec, session)?);
    }
    let eval = configure(session, args)?;
    let answers = eval.answer(&queries).map_err(|e| e.to_string())?;
    let evidence = answers.conditioned().then(|| answers.evidence());
    match args.format {
        Format::Facts => unreachable!("rejected before dispatch"),
        Format::Text => {
            let multi = answers.len() > 1;
            for (i, (query, answer)) in queries.queries().iter().zip(answers.iter()).enumerate() {
                if multi {
                    let _ = writeln!(out, "[{i}] {}", query.kind());
                }
                write_answer_text(out, answer, &program.catalog);
            }
            if let Some(ev) = evidence {
                // log-mass is the authoritative figure: the linear mass
                // reads 0.000000 once the log drops below ≈ −745.
                let _ = writeln!(
                    out,
                    "# evidence mass {:.6} (log {:.4}), ess {:.1}, worlds {}, runs {}",
                    ev.mass, ev.log_mass, ev.ess, ev.worlds, ev.runs
                );
                if let Some(rate) = ev.accept_rate {
                    let _ = writeln!(out, "# mh acceptance rate {rate:.3}");
                }
            }
        }
        Format::Json => {
            let evidence_json = evidence.map(|ev| {
                let mut members = vec![
                    ("mass".into(), Json::Num(ev.mass)),
                    ("log_mass".into(), Json::Num(ev.log_mass)),
                    ("ess".into(), Json::Num(ev.ess)),
                    ("worlds".into(), Json::Num(ev.worlds as f64)),
                    ("runs".into(), Json::Num(ev.runs as f64)),
                ];
                if let Some(rate) = ev.accept_rate {
                    members.push(("accept_rate".into(), Json::Num(rate)));
                }
                Json::Obj(members)
            });
            let doc = if answers.len() == 1 {
                let Json::Obj(mut members) = answer_json(&answers[0], &program.catalog) else {
                    unreachable!("answers render as objects")
                };
                if let Some(ev) = evidence_json {
                    members.push(("evidence".into(), ev));
                }
                Json::Obj(members)
            } else {
                let rendered: Vec<Json> = queries
                    .queries()
                    .iter()
                    .zip(answers.iter())
                    .map(|(query, answer)| {
                        let Json::Obj(mut members) = answer_json(answer, &program.catalog) else {
                            unreachable!("answers render as objects")
                        };
                        members.insert(0, ("kind".into(), Json::Str(query.kind().into())));
                        Json::Obj(members)
                    })
                    .collect();
                let mut members = vec![("answers".into(), Json::Arr(rendered))];
                if let Some(ev) = evidence_json {
                    members.push(("evidence".into(), ev));
                }
                Json::Obj(members)
            };
            let _ = writeln!(out, "{}", doc.render());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gdl: {e}");
            eprintln!(
                "usage: gdl <check|exact|sample|query|fit|batch|tree> <file.gdl> [args]\n\
                 \x20 fit:   gdl fit <file.gdl> <data.gdl> [--em-iters N] [--tol X] [--runs N]\n\
                 \x20        [--seed S] [--out fitted.gdl] [--format json]\n\
                 \x20        (dataset = `gdl sample <file.gdl> --format facts [--out data.gdl]`)\n\
                 \x20 query: gdl query <file.gdl> <marginal|expectation|histogram|quantile|tail>\n\
                 \x20        <Relation> [--agg count|sum|avg|min|max] [--col K]\n\
                 \x20        [--lo X --hi Y --bins N] [--q Q] [--threshold T]\n\
                 \x20        [--and \"expectation:Rel:count\"] (repeatable; one pass, many answers)\n\
                 \x20        [--given \"Alarm(h1). Normal<M, 1.0> == 2.5 :- Mu(M).\"]\n\
                 \x20        [--ess-target E [--max-runs N]] [--mh [--burn-in N] [--thin N]]\n\
                 \x20 batch: gdl batch <requests.json> [--threads N] [--format json]\n\
                 \x20 serve: gdl serve <file.gdl> [--addr HOST:PORT] [--workers N]\n\
                 \x20        [--max-inflight N] [--deadline-ms MS] [--max-body-bytes N]\n\
                 \x20 loadgen: gdl loadgen <requests.json> [--addr HOST:PORT]\n\
                 \x20        [--connections N] [--duration-ms MS] [--rate R] [--out report.json]\n\
                 \x20 flags: [--barany] [--runs N] [--seed S] [--steps N] [--depth N]\n\
                 \x20        [--threads N] [--batch N] [--input facts.gdl] [--format json]\n\
                 \x20        [--exact|--mc|--mh]"
            );
            ExitCode::from(2)
        }
    }
}
