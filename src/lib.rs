#![warn(missing_docs)]

//! # gdatalog
//!
//! A from-scratch Rust implementation of **Generative Datalog with
//! Continuous Distributions** (Grohe, Kaminski, Katoen, Lindner;
//! PODS 2020): Datalog whose rule heads may sample from parameterized
//! probability distributions — discrete *and* continuous — with the
//! paper's measure-theoretic semantics made executable.
//!
//! A GDatalog program denotes a **sub-probabilistic database**: a
//! (sub-)probability distribution over finite database instances, obtained
//! as the push-forward of a Markov process (the *probabilistic chase*)
//! along the paths-to-instances map `lim-inst`. This crate is a facade
//! re-exporting the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`data`] | values, schemas, facts, set-semantics instances, FDs |
//! | [`dist`] | the parameterized distribution family Ψ (Def. 2.1) |
//! | [`datalog`] | classical semi-naive Datalog substrate |
//! | [`lang`] | parser, validation, weak acyclicity, Datalog∃ translation |
//! | [`pdb`] | possible worlds, empirical PDBs, events, queries, streaming sinks |
//! | [`engine`] | the probabilistic chase: sessions, backends, exact/MC |
//! | [`learn`] | parameter fitting: closed-form MLE and weighted EM (`gdl fit`) |
//! | [`serve`] | program cache, session pool, batched query execution |
//! | [`net`] | HTTP/1.1 front end, admission control, load generator |
//! | [`stats`] | KS/χ² testing substrate used to verify the semantics |
//!
//! ## Quickstart
//!
//! Compile a program once into a [`Session`](prelude::Session), feed it
//! facts, and answer queries through the builder-style evaluation surface:
//!
//! ```
//! use gdatalog::prelude::*;
//!
//! let mut session = Session::from_source(
//!     "rel City(symbol, real) input.
//!      Earthquake(C, Flip<R>) :- City(C, R).
//!      Alarm(C) :- Earthquake(C, 1).",
//!     SemanticsMode::Grohe,
//! ).unwrap();
//! session.insert_facts_text("City(gotham, 0.3).").unwrap();
//!
//! // Exact evaluation: the full world table.
//! let worlds = session.eval().exact().worlds().unwrap();
//! assert_eq!(worlds.len(), 2);
//!
//! // Query terminals work on any backend (Fact 2.6): exact here …
//! let alarm = session.program().catalog.require("Alarm").unwrap();
//! let p = session.eval().marginal(&Fact::new(alarm, tuple!["gotham"])).unwrap();
//! assert!((p - 0.3).abs() < 1e-12);
//!
//! // … and streaming Monte-Carlo here: statistics fold run-by-run, so
//! // large run counts hold O(result) memory; the sampled worlds are
//! // identical for a fixed seed regardless of thread count.
//! let p_mc = session.eval().sample(10_000).threads(4).seed(7)
//!     .marginal(&Fact::new(alarm, tuple!["gotham"])).unwrap();
//! assert!((p - p_mc).abs() < 0.02);
//! ```
//!
//! See `docs/API.md` for the migration table from the pre-session
//! `Engine` entry points.

pub use gdatalog_core as engine;
pub use gdatalog_data as data;
pub use gdatalog_datalog as datalog;
pub use gdatalog_dist as dist;
pub use gdatalog_lang as lang;
pub use gdatalog_learn as learn;
pub use gdatalog_net as net;
pub use gdatalog_pdb as pdb;
pub use gdatalog_serve as serve;
pub use gdatalog_stats as stats;

/// The most commonly used items, for `use gdatalog::prelude::*`.
pub mod prelude {
    pub use gdatalog_core::{
        Answer, Answers, Backend, ChasePolicy, ChaseVariant, Engine, EngineError, EssTarget,
        EvalJob, EvalOptions, Evaluation, EvidenceSummary, ExactConfig, ExactParallelBackend,
        ExactSequentialBackend, McBackend, McConfig, MhBackend, PolicyKind, PreparedProgram,
        QueryIr, QuerySet, RunBudget, Session,
    };
    pub use gdatalog_data::{tuple, Catalog, ColType, Fact, Instance, RelId, Tuple, Value};
    pub use gdatalog_dist::{ParamDist, Registry};
    pub use gdatalog_lang::{Program, SemanticsMode};
    pub use gdatalog_learn::{fit_program, FitOptions, FitReport, Fitted, LearnError};
    pub use gdatalog_pdb::{
        AggFun, ColPred, ColumnHistogram, EmpiricalPdb, Event, FactSet, Moments, NormalizingSink,
        PossibleWorlds, Query, WeightStats, WorldSink,
    };
    pub use gdatalog_serve::{
        BatchExecutor, PreparedModel, ProgramCache, QueryKind, Reply, Request, Response,
        ServeError, Server, SessionPool,
    };
}

/// Rendered documentation, compiled: the guides under `docs/` are included
/// here as rustdoc modules so that **every Rust code block in them builds
/// and runs under `cargo test --doc`** — the tutorial cannot silently rot.
pub mod docs {
    /// The end-to-end tutorial (`docs/TUTORIAL.md`), from first program to
    /// batch serving.
    #[doc = include_str!("../docs/TUTORIAL.md")]
    pub mod tutorial {}

    /// The paper-to-code map (`docs/SEMANTICS.md`): where each construct
    /// of Grohe et al. (PODS 2020) lives in this workspace.
    #[doc = include_str!("../docs/SEMANTICS.md")]
    pub mod semantics {}
}
