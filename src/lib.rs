#![warn(missing_docs)]

//! # gdatalog
//!
//! A from-scratch Rust implementation of **Generative Datalog with
//! Continuous Distributions** (Grohe, Kaminski, Katoen, Lindner;
//! PODS 2020): Datalog whose rule heads may sample from parameterized
//! probability distributions — discrete *and* continuous — with the
//! paper's measure-theoretic semantics made executable.
//!
//! A GDatalog program denotes a **sub-probabilistic database**: a
//! (sub-)probability distribution over finite database instances, obtained
//! as the push-forward of a Markov process (the *probabilistic chase*)
//! along the paths-to-instances map `lim-inst`. This crate is a facade
//! re-exporting the workspace:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`data`] | values, schemas, facts, set-semantics instances, FDs |
//! | [`dist`] | the parameterized distribution family Ψ (Def. 2.1) |
//! | [`datalog`] | classical semi-naive Datalog substrate |
//! | [`lang`] | parser, validation, weak acyclicity, Datalog∃ translation |
//! | [`pdb`] | possible worlds, empirical PDBs, events, queries |
//! | [`engine`] | the probabilistic chase: sequential/parallel, exact/MC |
//! | [`stats`] | KS/χ² testing substrate used to verify the semantics |
//!
//! ## Quickstart
//!
//! ```
//! use gdatalog::prelude::*;
//!
//! // Example 1.1 of the paper, program G0.
//! let engine = Engine::from_source(
//!     "R(Flip<0.5>) :- true. R(Flip<0.5>) :- true.",
//!     SemanticsMode::Grohe,
//! ).unwrap();
//!
//! // Exact evaluation: the full world table.
//! let worlds = engine.enumerate(None, ExactConfig::default()).unwrap();
//! assert_eq!(worlds.len(), 3); // {R(0)}, {R(1)}, {R(0),R(1)}
//!
//! // Monte-Carlo evaluation (works for continuous programs too).
//! let pdb = engine.sample(None, &McConfig { runs: 1000, ..Default::default() }).unwrap();
//! assert_eq!(pdb.runs(), 1000);
//! ```

pub use gdatalog_core as engine;
pub use gdatalog_data as data;
pub use gdatalog_datalog as datalog;
pub use gdatalog_dist as dist;
pub use gdatalog_lang as lang;
pub use gdatalog_pdb as pdb;
pub use gdatalog_stats as stats;

/// The most commonly used items, for `use gdatalog::prelude::*`.
pub mod prelude {
    pub use gdatalog_core::{
        ChasePolicy, ChaseVariant, Engine, EngineError, ExactConfig, McConfig, PolicyKind,
    };
    pub use gdatalog_data::{Catalog, ColType, Fact, Instance, RelId, Tuple, Value};
    pub use gdatalog_dist::{ParamDist, Registry};
    pub use gdatalog_lang::{Program, SemanticsMode};
    pub use gdatalog_pdb::{EmpiricalPdb, PossibleWorlds};
}
